package sim

import (
	"testing"

	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/track"
)

func gridInstances(t *testing.T, skew float64, meanDur float64, numFrames int64, n int, seed uint64) []track.Instance {
	t.Helper()
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: n,
		NumFrames:    numFrames,
		SkewFraction: skew,
		MeanDuration: meanDur,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return instances
}

func TestRunValidation(t *testing.T) {
	instances := gridInstances(t, 0, 10, 10000, 10, 1)
	bad := []ChunkSimConfig{
		{Instances: nil, NumFrames: 100, Budget: 10},
		{Instances: instances, NumFrames: 0, Budget: 10},
		{Instances: instances, NumFrames: 10000, Budget: 0},
		{Instances: instances, NumFrames: 10000, Budget: 20000},
		{Instances: instances, NumFrames: 10000, Budget: 10, Checkpoints: []int64{5, 5}},
		{Instances: instances, NumFrames: 10000, Budget: 10, Checkpoints: []int64{0}},
	}
	for i, cfg := range bad {
		if _, err := Run(MethodRandom, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(Method(99), ChunkSimConfig{Instances: instances, NumFrames: 10000, Budget: 10}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTrajectoryMonotone(t *testing.T) {
	instances := gridInstances(t, 1.0/8, 200, 1<<18, 200, 3)
	for _, m := range []Method{MethodExSample, MethodRandom, MethodRandomPlus, MethodSequential} {
		tr, err := Run(m, ChunkSimConfig{
			Instances:   instances,
			NumFrames:   1 << 18,
			NumChunks:   16,
			Budget:      5000,
			Checkpoints: []int64{10, 100, 1000, 5000},
			Seed:        5,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		prev := int64(0)
		for k, f := range tr.Found {
			if f < prev {
				t.Fatalf("%v: trajectory decreases at checkpoint %d: %v", m, k, tr.Found)
			}
			prev = f
		}
		if tr.FoundAtEnd != tr.Found[len(tr.Found)-1] {
			t.Fatalf("%v: FoundAtEnd %d != last checkpoint %d", m, tr.FoundAtEnd, tr.Found[len(tr.Found)-1])
		}
		if tr.FoundAtEnd > 200 {
			t.Fatalf("%v: found %d > population", m, tr.FoundAtEnd)
		}
		if tr.Samples != 5000 {
			t.Fatalf("%v: samples = %d", m, tr.Samples)
		}
	}
}

func TestFullBudgetFindsEverythingFindable(t *testing.T) {
	// Sampling every frame must find every instance.
	instances := gridInstances(t, 0, 50, 5000, 50, 7)
	tr, err := Run(MethodRandom, ChunkSimConfig{
		Instances: instances,
		NumFrames: 5000,
		Budget:    5000,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.FoundAtEnd != 50 {
		t.Fatalf("found %d of 50 after exhaustive sampling", tr.FoundAtEnd)
	}
}

// The headline §IV result: under heavy skew ExSample finds results in fewer
// samples than random.
func TestExSampleBeatsRandomUnderSkew(t *testing.T) {
	const (
		numFrames = 1 << 21 // ~2M frames
		budget    = 8000
		trials    = 5
		target    = 100
	)
	instances := gridInstances(t, 1.0/32, 700, numFrames, 2000, 11)
	var exTotal, rndTotal int64
	for trial := 0; trial < trials; trial++ {
		cfg := ChunkSimConfig{
			Instances: instances,
			NumFrames: numFrames,
			NumChunks: 128,
			Budget:    budget,
			Seed:      uint64(100 + trial),
		}
		ex, okEx, err := SamplesToReach(MethodExSample, cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		rnd, okRnd, err := SamplesToReach(MethodRandom, cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		if !okEx {
			t.Fatalf("trial %d: exsample did not reach %d results in %d samples", trial, target, budget)
		}
		if !okRnd {
			rnd = budget
		}
		exTotal += ex
		rndTotal += rnd
	}
	if exTotal >= rndTotal {
		t.Fatalf("exsample total samples %d >= random %d under 1/32 skew", exTotal, rndTotal)
	}
	savings := float64(rndTotal) / float64(exTotal)
	if savings < 1.3 {
		t.Fatalf("savings = %vx, want > 1.3x under heavy skew", savings)
	}
	t.Logf("savings to %d results: %.2fx", target, savings)
}

// Under no skew ExSample should be close to random (paper: "it never
// performs significantly worse").
func TestExSampleMatchesRandomWithoutSkew(t *testing.T) {
	const (
		numFrames = 1 << 20
		budget    = 4000
		target    = 100
		trials    = 5
	)
	instances := gridInstances(t, 0, 700, numFrames, 2000, 13)
	var exTotal, rndTotal int64
	for trial := 0; trial < trials; trial++ {
		cfg := ChunkSimConfig{
			Instances: instances,
			NumFrames: numFrames,
			NumChunks: 64,
			Budget:    budget,
			Seed:      uint64(500 + trial),
		}
		ex, _, err := SamplesToReach(MethodExSample, cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		rnd, _, err := SamplesToReach(MethodRandom, cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		exTotal += ex
		rndTotal += rnd
	}
	ratio := float64(exTotal) / float64(rndTotal)
	if ratio > 1.6 {
		t.Fatalf("exsample needed %.2fx the samples of random without skew; should be comparable", ratio)
	}
	t.Logf("no-skew ratio exsample/random = %.2f", ratio)
}

func TestSamplesToReachValidation(t *testing.T) {
	instances := gridInstances(t, 0, 10, 10000, 10, 1)
	cfg := ChunkSimConfig{Instances: instances, NumFrames: 10000, Budget: 100}
	if _, _, err := SamplesToReach(MethodRandom, cfg, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, _, err := SamplesToReach(Method(99), cfg, 5); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSamplesToReachUnreachable(t *testing.T) {
	instances := gridInstances(t, 0, 10, 10000, 10, 1)
	cfg := ChunkSimConfig{Instances: instances, NumFrames: 10000, Budget: 50, Seed: 3}
	n, ok, err := SamplesToReach(MethodRandom, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("reported reaching 1000 results from a population of 10")
	}
	if n != 50 {
		t.Fatalf("samples = %d, want budget 50", n)
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodExSample:   "exsample",
		MethodRandom:     "random",
		MethodRandomPlus: "random+",
		MethodSequential: "sequential",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method String empty")
	}
}
