package sim

import (
	"fmt"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// Method selects the sampling strategy for the §IV chunk simulation.
type Method int

const (
	// MethodExSample runs Algorithm 1 over M chunks.
	MethodExSample Method = iota
	// MethodRandom samples uniformly without replacement over the whole
	// repository (the paper's main baseline).
	MethodRandom
	// MethodRandomPlus uses the stratified random+ order globally (§III-F).
	MethodRandomPlus
	// MethodSequential scans frames in order (the naive baseline, §II-B).
	MethodSequential
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodExSample:
		return "exsample"
	case MethodRandom:
		return "random"
	case MethodRandomPlus:
		return "random+"
	case MethodSequential:
		return "sequential"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ChunkSimConfig configures one §IV simulation run.
type ChunkSimConfig struct {
	// Instances is the ground-truth population (fixed intervals).
	Instances []track.Instance
	// NumFrames is the repository size.
	NumFrames int64
	// NumChunks is M (ExSample only; other methods ignore it).
	NumChunks int
	// Budget caps the number of frames sampled.
	Budget int64
	// Checkpoints are the sample counts at which the distinct-found count
	// is recorded; must be ascending. Empty means record only at Budget.
	Checkpoints []int64
	// Core configures the ExSample sampler (policy, prior, within-chunk
	// order); only used by MethodExSample.
	Core core.Config
	// Seed drives the run.
	Seed uint64
}

func (c ChunkSimConfig) validate() error {
	if len(c.Instances) == 0 {
		return fmt.Errorf("sim: no instances")
	}
	if c.NumFrames <= 0 {
		return fmt.Errorf("sim: NumFrames must be positive, got %d", c.NumFrames)
	}
	if c.Budget <= 0 {
		return fmt.Errorf("sim: Budget must be positive, got %d", c.Budget)
	}
	if c.Budget > c.NumFrames {
		return fmt.Errorf("sim: Budget %d exceeds NumFrames %d", c.Budget, c.NumFrames)
	}
	prev := int64(0)
	for _, cp := range c.Checkpoints {
		if cp <= prev {
			return fmt.Errorf("sim: checkpoints must be ascending and positive")
		}
		prev = cp
	}
	return nil
}

// Trajectory is the result of one run: Found[k] distinct instances had been
// found after Checkpoints[k] samples. SamplesToFind[target] records when
// each requested target count was first reached (0 if never).
type Trajectory struct {
	Checkpoints []int64
	Found       []int64
	// FoundAtEnd is the distinct count when the budget was exhausted.
	FoundAtEnd int64
	// Samples is the number of frames actually processed.
	Samples int64
}

// Run executes one simulated search and records the discovery trajectory.
// The §IV simulations use a perfect detector and discriminator: sampling a
// frame reveals exactly the instances visible in it, and identity is known,
// so d0/d1 reduce to first/second sightings of instance IDs.
func Run(method Method, cfg ChunkSimConfig) (Trajectory, error) {
	if err := cfg.validate(); err != nil {
		return Trajectory{}, err
	}
	idx, err := track.NewIndex(cfg.Instances, cfg.NumFrames, 0)
	if err != nil {
		return Trajectory{}, err
	}
	checkpoints := cfg.Checkpoints
	if len(checkpoints) == 0 {
		checkpoints = []int64{cfg.Budget}
	}
	tr := Trajectory{
		Checkpoints: checkpoints,
		Found:       make([]int64, len(checkpoints)),
	}

	sightings := make(map[int]int, len(cfg.Instances))
	var found int64
	var buf []track.Instance

	// observe processes one frame and returns the (d0, d1) sizes.
	observe := func(frame int64) (d0, d1 int) {
		buf = idx.At(frame, buf[:0])
		for _, in := range buf {
			s := sightings[in.ID]
			switch s {
			case 0:
				d0++
				found++
			case 1:
				d1++
			}
			sightings[in.ID] = s + 1
		}
		return d0, d1
	}

	cpIdx := 0
	record := func(n int64) {
		for cpIdx < len(checkpoints) && n >= checkpoints[cpIdx] {
			tr.Found[cpIdx] = found
			cpIdx++
		}
	}

	switch method {
	case MethodExSample:
		m := cfg.NumChunks
		if m <= 0 {
			m = 1
		}
		chunks, err := video.SplitRange(0, cfg.NumFrames, m)
		if err != nil {
			return Trajectory{}, err
		}
		coreCfg := cfg.Core
		coreCfg.Seed = cfg.Seed
		s, err := core.New(chunks, coreCfg)
		if err != nil {
			return Trajectory{}, err
		}
		for tr.Samples < cfg.Budget {
			p, ok := s.Next()
			if !ok {
				break
			}
			d0, d1 := observe(p.Frame)
			if err := s.Update(p.Chunk, d0, d1); err != nil {
				return Trajectory{}, err
			}
			tr.Samples++
			record(tr.Samples)
		}

	case MethodRandom, MethodRandomPlus, MethodSequential:
		var order video.FrameOrder
		var err error
		switch method {
		case MethodRandom:
			order, err = video.NewUniformOrder(0, cfg.NumFrames, xrand.New(cfg.Seed))
		case MethodRandomPlus:
			order, err = video.NewRandomPlusOrder(0, cfg.NumFrames, 0, xrand.New(cfg.Seed))
		default:
			order, err = video.NewSequentialOrder(0, cfg.NumFrames, 1)
		}
		if err != nil {
			return Trajectory{}, err
		}
		for tr.Samples < cfg.Budget {
			frame, ok := order.Next()
			if !ok {
				break
			}
			observe(frame)
			tr.Samples++
			record(tr.Samples)
		}

	default:
		return Trajectory{}, fmt.Errorf("sim: unknown method %d", int(method))
	}

	record(cfg.Budget)
	tr.FoundAtEnd = found
	return tr, nil
}

// SamplesToReach runs a search until `target` distinct instances are found
// and returns the number of samples needed, or (budget, false) if the target
// was not reached within the budget.
func SamplesToReach(method Method, cfg ChunkSimConfig, target int64) (int64, bool, error) {
	if err := cfg.validate(); err != nil {
		return 0, false, err
	}
	if target <= 0 {
		return 0, false, fmt.Errorf("sim: target must be positive, got %d", target)
	}
	idx, err := track.NewIndex(cfg.Instances, cfg.NumFrames, 0)
	if err != nil {
		return 0, false, err
	}
	sightings := make(map[int]int)
	var found, samples int64
	var buf []track.Instance

	step := func(frame int64) (d0, d1 int, done bool) {
		samples++
		buf = idx.At(frame, buf[:0])
		for _, in := range buf {
			s := sightings[in.ID]
			switch s {
			case 0:
				d0++
				found++
			case 1:
				d1++
			}
			sightings[in.ID] = s + 1
		}
		return d0, d1, found >= target
	}

	switch method {
	case MethodExSample:
		m := cfg.NumChunks
		if m <= 0 {
			m = 1
		}
		chunks, err := video.SplitRange(0, cfg.NumFrames, m)
		if err != nil {
			return 0, false, err
		}
		coreCfg := cfg.Core
		coreCfg.Seed = cfg.Seed
		s, err := core.New(chunks, coreCfg)
		if err != nil {
			return 0, false, err
		}
		for samples < cfg.Budget {
			p, ok := s.Next()
			if !ok {
				break
			}
			d0, d1, done := step(p.Frame)
			if err := s.Update(p.Chunk, d0, d1); err != nil {
				return 0, false, err
			}
			if done {
				return samples, true, nil
			}
		}
	case MethodRandom, MethodRandomPlus, MethodSequential:
		var order video.FrameOrder
		var err error
		switch method {
		case MethodRandom:
			order, err = video.NewUniformOrder(0, cfg.NumFrames, xrand.New(cfg.Seed))
		case MethodRandomPlus:
			order, err = video.NewRandomPlusOrder(0, cfg.NumFrames, 0, xrand.New(cfg.Seed))
		default:
			order, err = video.NewSequentialOrder(0, cfg.NumFrames, 1)
		}
		if err != nil {
			return 0, false, err
		}
		for samples < cfg.Budget {
			frame, ok := order.Next()
			if !ok {
				break
			}
			if _, _, done := step(frame); done {
				return samples, true, nil
			}
		}
	default:
		return 0, false, fmt.Errorf("sim: unknown method %d", int(method))
	}
	return cfg.Budget, false, nil
}
