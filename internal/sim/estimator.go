// Package sim implements the paper's two simulation studies:
//
//   - The §III-D estimator validation (Figure 2): instances appear in a
//     sampled frame independently with hidden probabilities p_i; the study
//     compares the observable estimate N1(n)/n and its Gamma belief against
//     the true expected reward R(n+1) = Σ_{unseen} p_i.
//   - The §IV chunk-skew study (Figures 3 and 4): instances occupy fixed
//     intervals of a 16M-frame axis with controlled skew; ExSample, random
//     and the optimal static allocation are compared on distinct instances
//     found per frame sampled.
package sim

import (
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/xrand"
)

// Appearances records, for each instance, when it was first and second seen
// during a run of sequential random frame sampling. Only the first two
// appearance times matter to the estimator: N1(n) counts instances with
// exactly one appearance by time n, and R(n+1) sums p_i over instances not
// yet seen.
//
// Appearance times are 1-based sample counts; an instance first seen on the
// k-th sample has T1 = k. Times are simulated directly as geometric gaps,
// which is distributionally identical to per-frame Bernoulli coin flips but
// O(N) per run instead of O(N·n).
type Appearances struct {
	T1 []int64 // first appearance sample index (1-based); MaxInt64 if never
	T2 []int64 // second appearance sample index; MaxInt64 if never
}

const never = math.MaxInt64

// SimulateAppearances draws first/second appearance times for each
// instance. horizon bounds the simulated sample count; appearances beyond it
// are recorded as "never".
func SimulateAppearances(pis []float64, horizon int64, rng *xrand.RNG) (Appearances, error) {
	if len(pis) == 0 {
		return Appearances{}, fmt.Errorf("sim: no instances")
	}
	if horizon <= 0 {
		return Appearances{}, fmt.Errorf("sim: horizon must be positive, got %d", horizon)
	}
	a := Appearances{
		T1: make([]int64, len(pis)),
		T2: make([]int64, len(pis)),
	}
	for i, p := range pis {
		if p <= 0 || p >= 1 {
			return Appearances{}, fmt.Errorf("sim: p[%d] = %v outside (0,1)", i, p)
		}
		t1 := geometric(p, rng)
		if t1 > horizon {
			a.T1[i], a.T2[i] = never, never
			continue
		}
		a.T1[i] = t1
		t2 := t1 + geometric(p, rng)
		if t2 > horizon {
			a.T2[i] = never
		} else {
			a.T2[i] = t2
		}
	}
	return a, nil
}

// geometric draws the number of Bernoulli(p) trials up to and including the
// first success (support 1, 2, ...), via inversion.
func geometric(p float64, rng *xrand.RNG) int64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := int64(math.Ceil(math.Log(u) / math.Log(1-p)))
	if g < 1 {
		g = 1
	}
	return g
}

// N1 returns the number of instances seen exactly once within the first n
// samples.
func (a Appearances) N1(n int64) int64 {
	var count int64
	for i := range a.T1 {
		if a.T1[i] <= n && a.T2[i] > n {
			count++
		}
	}
	return count
}

// RNext returns the true expected number of new results on sample n+1:
// Σ p_i over instances not seen within the first n samples (§III-D computes
// exactly this from the hidden state).
func (a Appearances) RNext(pis []float64, n int64) float64 {
	var r float64
	for i, p := range pis {
		if a.T1[i] > n {
			r += p
		}
	}
	return r
}

// Seen returns the number of distinct instances seen within n samples.
func (a Appearances) Seen(n int64) int64 {
	var count int64
	for _, t := range a.T1 {
		if t <= n {
			count++
		}
	}
	return count
}

// BeliefSample is one simulated observation: at sample count N the run had
// N1 instances seen exactly once and true next-sample reward R.
type BeliefSample struct {
	N  int64
	N1 int64
	R  float64
}

// CollectBeliefSamples runs the §III-D experiment: `runs` independent
// sampling processes over the same p_i population, probed at the given
// sample counts. It returns one BeliefSample per (run, probe).
func CollectBeliefSamples(pis []float64, probes []int64, runs int, seed uint64) ([]BeliefSample, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be positive, got %d", runs)
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("sim: no probe points")
	}
	var horizon int64
	for _, p := range probes {
		if p <= 0 {
			return nil, fmt.Errorf("sim: probe %d must be positive", p)
		}
		if p > horizon {
			horizon = p
		}
	}
	horizon++ // RNext(n) needs appearances resolved through n+1
	out := make([]BeliefSample, 0, runs*len(probes))
	for r := 0; r < runs; r++ {
		app, err := SimulateAppearances(pis, horizon, xrand.NewFrom(seed, uint64(r)))
		if err != nil {
			return nil, err
		}
		for _, n := range probes {
			out = append(out, BeliefSample{N: n, N1: app.N1(n), R: app.RNext(pis, n)})
		}
	}
	return out, nil
}
