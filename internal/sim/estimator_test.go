package sim

import (
	"math"
	"testing"

	"github.com/exsample/exsample/internal/xrand"
)

func TestGeometricMean(t *testing.T) {
	rng := xrand.New(1)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(geometric(p, rng))
		}
		mean := sum / n
		want := 1 / p
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("geometric(%v) mean = %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricSupport(t *testing.T) {
	rng := xrand.New(2)
	for i := 0; i < 10000; i++ {
		if g := geometric(0.9, rng); g < 1 {
			t.Fatalf("geometric < 1: %d", g)
		}
	}
}

func TestSimulateAppearancesOrdering(t *testing.T) {
	pis := []float64{0.5, 0.01, 0.001}
	app, err := SimulateAppearances(pis, 1_000_000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pis {
		if app.T1[i] < 1 {
			t.Fatalf("T1[%d] = %d < 1", i, app.T1[i])
		}
		if app.T2[i] <= app.T1[i] {
			t.Fatalf("T2[%d]=%d <= T1[%d]=%d", i, app.T2[i], i, app.T1[i])
		}
	}
}

func TestSimulateAppearancesHorizon(t *testing.T) {
	// A very rare instance with a tiny horizon should usually be "never".
	pis := []float64{1e-9}
	app, err := SimulateAppearances(pis, 10, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if app.T1[0] != never {
		t.Fatalf("T1 = %d, want never", app.T1[0])
	}
	if app.T2[0] != never {
		t.Fatalf("T2 = %d, want never", app.T2[0])
	}
}

func TestSimulateAppearancesValidation(t *testing.T) {
	if _, err := SimulateAppearances(nil, 10, xrand.New(1)); err == nil {
		t.Error("no instances accepted")
	}
	if _, err := SimulateAppearances([]float64{0.5}, 0, xrand.New(1)); err == nil {
		t.Error("zero horizon accepted")
	}
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := SimulateAppearances([]float64{p}, 10, xrand.New(1)); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

func TestN1AndSeenAndRNext(t *testing.T) {
	pis := []float64{0.1, 0.2, 0.3}
	app := Appearances{
		T1: []int64{5, 10, never},
		T2: []int64{8, never, never},
	}
	// After 6 samples: instance 0 seen once (T1=5<=6<T2=8).
	if got := app.N1(6); got != 1 {
		t.Errorf("N1(6) = %d", got)
	}
	// After 9: instance 0 seen twice, instance 1 not yet.
	if got := app.N1(9); got != 0 {
		t.Errorf("N1(9) = %d", got)
	}
	// After 12: instance 1 seen once.
	if got := app.N1(12); got != 1 {
		t.Errorf("N1(12) = %d", got)
	}
	if got := app.Seen(12); got != 2 {
		t.Errorf("Seen(12) = %d", got)
	}
	// R(7): unseen = instances 1 and 2 -> 0.2 + 0.3.
	if got := app.RNext(pis, 6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RNext(6) = %v", got)
	}
	// R after everything findable is found.
	if got := app.RNext(pis, 20); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("RNext(20) = %v", got)
	}
}

// The core estimator property (Eq. III.1 / Theorem "Bias of R̂"): averaged
// over runs, N1(n)/n is close to (and not below) E[R(n+1)], with positive
// bias bounded by max p_i relative to the estimate.
func TestEstimatorBiasBound(t *testing.T) {
	pis := []float64{0.02, 0.005, 0.01, 0.001, 0.003, 0.03, 0.0005, 0.008, 0.015, 0.002}
	maxP := 0.03
	const runs = 4000
	const n = 200
	var sumEst, sumR float64
	for r := 0; r < runs; r++ {
		app, err := SimulateAppearances(pis, n+1, xrand.NewFrom(77, uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		sumEst += float64(app.N1(n)) / float64(n)
		sumR += app.RNext(pis, n)
	}
	est := sumEst / runs
	r := sumR / runs
	bias := (est - r) / est
	// Left inequality: bias >= 0 (allow Monte Carlo slack).
	if bias < -0.05 {
		t.Errorf("bias = %v, want non-negative (est=%v, R=%v)", bias, est, r)
	}
	// Right inequality: bias <= max p (with Monte Carlo slack).
	if bias > maxP+0.05 {
		t.Errorf("bias = %v exceeds max p bound %v", bias, maxP)
	}
}

// Variance bound (Eq. III.3): Var[N1/n] <= E[N1/n]/n.
func TestEstimatorVarianceBound(t *testing.T) {
	pis := []float64{0.02, 0.005, 0.01, 0.001, 0.003, 0.03, 0.0005, 0.008, 0.015, 0.002}
	const runs = 4000
	const n = 300
	var sum, sumsq float64
	for r := 0; r < runs; r++ {
		app, err := SimulateAppearances(pis, n, xrand.NewFrom(99, uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		est := float64(app.N1(n)) / float64(n)
		sum += est
		sumsq += est * est
	}
	mean := sum / runs
	variance := sumsq/runs - mean*mean
	bound := mean / float64(n)
	if variance > bound*1.15 { // slack for Monte Carlo error
		t.Errorf("variance %v exceeds bound %v", variance, bound)
	}
}

func TestCollectBeliefSamples(t *testing.T) {
	pis := []float64{0.05, 0.01, 0.002}
	samples, err := CollectBeliefSamples(pis, []int64{10, 100}, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 100 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.N != 10 && s.N != 100 {
			t.Fatalf("unexpected probe %d", s.N)
		}
		if s.N1 < 0 || s.N1 > 3 {
			t.Fatalf("N1 = %d out of range", s.N1)
		}
		if s.R < 0 || s.R > 0.062+1e-12 {
			t.Fatalf("R = %v out of range", s.R)
		}
	}
}

func TestCollectBeliefSamplesValidation(t *testing.T) {
	pis := []float64{0.5}
	if _, err := CollectBeliefSamples(pis, []int64{10}, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := CollectBeliefSamples(pis, nil, 1, 1); err == nil {
		t.Error("no probes accepted")
	}
	if _, err := CollectBeliefSamples(pis, []int64{0}, 1, 1); err == nil {
		t.Error("zero probe accepted")
	}
}
