// Package metrics computes the evaluation quantities the paper reports:
// recall trajectories over distinct instances, time/samples-to-recall,
// savings ratios between methods (Figure 5), aggregate bands (median,
// 25–75%), and the per-query skew metric S shown in Figure 6.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

// RecallCurve tracks distinct ground-truth instances discovered as a
// function of processed frames (and charged seconds).
type RecallCurve struct {
	total   int
	seen    map[int]bool
	Samples []int64   // cumulative frames processed at each discovery step
	Seconds []float64 // cumulative seconds at each discovery step
	Found   []int     // distinct count after each discovery step
}

// NewRecallCurve creates a curve for a query with the given number of
// distinct ground-truth instances. A zero population is legal — a standing
// query can be registered against a live source before any segment
// containing its class has arrived — and reports zero recall until
// SetTotal grows the denominator.
func NewRecallCurve(totalInstances int) (*RecallCurve, error) {
	if totalInstances < 0 {
		return nil, fmt.Errorf("metrics: totalInstances must be non-negative, got %d", totalInstances)
	}
	return &RecallCurve{total: totalInstances, seen: make(map[int]bool)}, nil
}

// Observe records the truth ids discovered by one processed frame at the
// given cumulative cost. False positives (negative ids) are ignored — the
// paper measures recall over true distinct instances.
func (rc *RecallCurve) Observe(cumSamples int64, cumSeconds float64, truthIDs []int) {
	grew := false
	for _, id := range truthIDs {
		if id < 0 || rc.seen[id] {
			continue
		}
		rc.seen[id] = true
		grew = true
	}
	if grew {
		rc.Samples = append(rc.Samples, cumSamples)
		rc.Seconds = append(rc.Seconds, cumSeconds)
		rc.Found = append(rc.Found, len(rc.seen))
	}
}

// SetTotal updates the ground-truth population recall is measured
// against. It is grow-only: an elastic shard attach enlarges the
// reachable population, while shrinking the denominator mid-run would
// make recorded recall non-monotonic. Values not above the current total
// are ignored.
func (rc *RecallCurve) SetTotal(totalInstances int) {
	if totalInstances > rc.total {
		rc.total = totalInstances
	}
}

// Recall returns the fraction of distinct instances discovered so far (0
// while the measured population is still empty).
func (rc *RecallCurve) Recall() float64 {
	if rc.total == 0 {
		return 0
	}
	return float64(len(rc.seen)) / float64(rc.total)
}

// DistinctFound returns the number of distinct instances discovered.
func (rc *RecallCurve) DistinctFound() int { return len(rc.seen) }

// SamplesToRecall returns the number of processed frames at which recall
// first reached r, and whether it was reached.
func (rc *RecallCurve) SamplesToRecall(r float64) (int64, bool) {
	need := int(math.Ceil(r * float64(rc.total)))
	if need < 1 {
		need = 1
	}
	for i, f := range rc.Found {
		if f >= need {
			return rc.Samples[i], true
		}
	}
	return 0, false
}

// SecondsToRecall returns the charged seconds at which recall first reached
// r, and whether it was reached.
func (rc *RecallCurve) SecondsToRecall(r float64) (float64, bool) {
	need := int(math.Ceil(r * float64(rc.total)))
	if need < 1 {
		need = 1
	}
	for i, f := range rc.Found {
		if f >= need {
			return rc.Seconds[i], true
		}
	}
	return 0, false
}

// Savings is the Figure 5 quantity: the ratio of the baseline's cost to
// ExSample's cost to reach the same recall. >1 means ExSample wins.
func Savings(baselineCost, exsampleCost float64) (float64, error) {
	if baselineCost <= 0 || exsampleCost <= 0 {
		return 0, fmt.Errorf("metrics: costs must be positive (baseline=%v exsample=%v)", baselineCost, exsampleCost)
	}
	return baselineCost / exsampleCost, nil
}

// Band summarizes repeated trials: median plus the 25th and 75th
// percentiles, the bands shaded in Figures 3 and 4.
type Band struct {
	Median, P25, P75 float64
}

// NewBand computes a Band over trial values.
func NewBand(values []float64) (Band, error) {
	med, err := stats.Median(values)
	if err != nil {
		return Band{}, err
	}
	p25, err := stats.Percentile(values, 0.25)
	if err != nil {
		return Band{}, err
	}
	p75, err := stats.Percentile(values, 0.75)
	if err != nil {
		return Band{}, err
	}
	return Band{Median: med, P25: p25, P75: p75}, nil
}

// ChunkHistogram counts distinct instances per chunk, the per-chunk bars of
// Figure 6. An instance is charged to every chunk it overlaps.
func ChunkHistogram(instances []track.Instance, chunks []video.Chunk) []int {
	counts := make([]int, len(chunks))
	for _, in := range instances {
		for j, c := range chunks {
			if in.Start < c.End && in.End >= c.Start {
				counts[j]++
			}
		}
	}
	return counts
}

// SkewMetric computes the paper's skew statistic S (Figure 6): with k the
// minimum number of chunks that together cover at least half the instance
// mass, S = (M/2) / k. Uniformly spread instances give S ≈ 1; S = 14 means
// half the results live in 1/28 of the chunks.
func SkewMetric(chunkCounts []int) (float64, error) {
	m := len(chunkCounts)
	if m == 0 {
		return 0, fmt.Errorf("metrics: no chunks")
	}
	total := 0
	for _, c := range chunkCounts {
		if c < 0 {
			return 0, fmt.Errorf("metrics: negative chunk count")
		}
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: no instances in any chunk")
	}
	sorted := append([]int(nil), chunkCounts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	half := (total + 1) / 2
	cum, k := 0, 0
	for _, c := range sorted {
		cum += c
		k++
		if cum >= half {
			break
		}
	}
	return float64(m) / 2 / float64(k), nil
}

// MinChunksForHalf returns k, the size of the minimum chunk set covering at
// least half the instances (the blue bars of Figure 6).
func MinChunksForHalf(chunkCounts []int) (int, error) {
	s, err := SkewMetric(chunkCounts)
	if err != nil {
		return 0, err
	}
	return int(math.Round(float64(len(chunkCounts)) / 2 / s)), nil
}

// GeoMeanSavings aggregates per-query savings ratios as the paper does
// ("geometric average of 1.9x across all settings").
func GeoMeanSavings(ratios []float64) (float64, error) { return stats.GeoMean(ratios) }
