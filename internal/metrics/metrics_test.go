package metrics

import (
	"math"
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

func TestRecallCurveBasics(t *testing.T) {
	rc, err := NewRecallCurve(4)
	if err != nil {
		t.Fatal(err)
	}
	rc.Observe(1, 0.05, []int{0})
	rc.Observe(2, 0.10, []int{0})    // repeat: no growth
	rc.Observe(3, 0.15, []int{-1})   // false positive: ignored
	rc.Observe(4, 0.20, []int{1, 2}) // two at once
	if rc.DistinctFound() != 3 {
		t.Fatalf("DistinctFound = %d", rc.DistinctFound())
	}
	if got := rc.Recall(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Recall = %v", got)
	}
	if len(rc.Samples) != 2 {
		t.Fatalf("curve recorded %d growth steps", len(rc.Samples))
	}
}

func TestNewRecallCurveValidation(t *testing.T) {
	if _, err := NewRecallCurve(-1); err == nil {
		t.Error("negative instances accepted")
	}
	// Zero is legal: a standing query can start before its class has any
	// population; recall reads 0 until SetTotal grows the denominator.
	rc, err := NewRecallCurve(0)
	if err != nil {
		t.Fatalf("zero instances rejected: %v", err)
	}
	if got := rc.Recall(); got != 0 {
		t.Errorf("empty-population recall = %v, want 0", got)
	}
	rc.Observe(1, 1, []int{0})
	rc.SetTotal(2)
	if got := rc.Recall(); got != 0.5 {
		t.Errorf("recall after SetTotal = %v, want 0.5", got)
	}
}

func TestSamplesToRecall(t *testing.T) {
	rc, err := NewRecallCurve(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		rc.Observe(int64(i+1)*10, float64(i+1), []int{i})
	}
	n, ok := rc.SamplesToRecall(0.5)
	if !ok || n != 50 {
		t.Fatalf("SamplesToRecall(0.5) = %d, %v", n, ok)
	}
	sec, ok := rc.SecondsToRecall(0.5)
	if !ok || sec != 5 {
		t.Fatalf("SecondsToRecall(0.5) = %v, %v", sec, ok)
	}
	if _, ok := rc.SamplesToRecall(1.0); ok {
		t.Fatal("recall 1.0 reported reached with 9/10 found")
	}
	// Tiny recall needs at least one instance.
	n, ok = rc.SamplesToRecall(0.01)
	if !ok || n != 10 {
		t.Fatalf("SamplesToRecall(0.01) = %d, %v", n, ok)
	}
}

func TestSavings(t *testing.T) {
	s, err := Savings(60, 10)
	if err != nil || s != 6 {
		t.Fatalf("Savings = %v, %v", s, err)
	}
	if _, err := Savings(0, 1); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := Savings(1, 0); err == nil {
		t.Error("zero exsample accepted")
	}
}

func TestNewBand(t *testing.T) {
	b, err := NewBand([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 3 || b.P25 != 2 || b.P75 != 4 {
		t.Fatalf("band = %+v", b)
	}
	if _, err := NewBand(nil); err == nil {
		t.Error("empty band accepted")
	}
}

func mkInst(id int, start, end int64) track.Instance {
	return track.Instance{ID: id, Class: "c", Start: start, End: end,
		StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)}
}

func TestChunkHistogram(t *testing.T) {
	chunks, err := video.SplitRange(0, 100, 4) // 25 frames each
	if err != nil {
		t.Fatal(err)
	}
	instances := []track.Instance{
		mkInst(0, 0, 10),  // chunk 0
		mkInst(1, 20, 30), // chunks 0 and 1
		mkInst(2, 80, 99), // chunk 3
	}
	h := ChunkHistogram(instances, chunks)
	want := []int{2, 1, 0, 1}
	for j := range want {
		if h[j] != want[j] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestSkewMetricUniform(t *testing.T) {
	// 8 chunks, equal counts: half the mass needs 4 chunks -> S = 1.
	s, err := SkewMetric([]int{5, 5, 5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("uniform S = %v", s)
	}
}

func TestSkewMetricConcentrated(t *testing.T) {
	// 8 chunks, everything in one chunk: k = 1 -> S = 4.
	s, err := SkewMetric([]int{40, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s != 4 {
		t.Fatalf("concentrated S = %v", s)
	}
	k, err := MinChunksForHalf([]int{40, 0, 0, 0, 0, 0, 0, 0})
	if err != nil || k != 1 {
		t.Fatalf("k = %d, %v", k, err)
	}
}

func TestSkewMetricErrors(t *testing.T) {
	if _, err := SkewMetric(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := SkewMetric([]int{0, 0}); err == nil {
		t.Error("all-zero accepted")
	}
	if _, err := SkewMetric([]int{-1, 2}); err == nil {
		t.Error("negative accepted")
	}
}

func TestGeoMeanSavings(t *testing.T) {
	g, err := GeoMeanSavings([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
}
