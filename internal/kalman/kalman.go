// Package kalman implements the constant-velocity Kalman filtering used by
// the SORT-style tracker: each tracked box is modeled by four independent
// position+velocity filters over (center-x, center-y, width, height). SORT
// proper uses a joint 7-dimensional state; the per-coordinate decomposition
// is the standard simplification and keeps every step in closed form.
package kalman

import (
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/geom"
)

// Filter1D is a scalar constant-velocity Kalman filter: state (x, v) with
// x' = x + v·dt, observed x only.
type Filter1D struct {
	X, V float64 // state estimate
	// Covariance (symmetric 2x2): [[Pxx, Pxv], [Pxv, Pvv]].
	Pxx, Pxv, Pvv float64
	// Q scales process noise; R is measurement noise variance.
	Q, R float64
}

// NewFilter1D initializes a filter at position x with uncertain velocity.
func NewFilter1D(x, q, r float64) (*Filter1D, error) {
	if q <= 0 || r <= 0 {
		return nil, fmt.Errorf("kalman: noise parameters must be positive (q=%v r=%v)", q, r)
	}
	return &Filter1D{
		X: x, V: 0,
		Pxx: r, Pxv: 0, Pvv: 100 * q, // velocity unknown at start
		Q: q, R: r,
	}, nil
}

// Predict advances the state by dt time steps.
func (f *Filter1D) Predict(dt float64) {
	f.X += f.V * dt
	// P = F P Fᵀ + Q_d with F = [[1, dt], [0, 1]] and a discrete
	// white-acceleration process noise.
	pxx := f.Pxx + dt*(2*f.Pxv+dt*f.Pvv)
	pxv := f.Pxv + dt*f.Pvv
	dt2 := dt * dt
	f.Pxx = pxx + f.Q*dt2*dt2/4
	f.Pxv = pxv + f.Q*dt2*dt/2
	f.Pvv += f.Q * dt2
}

// Update incorporates a measurement of x.
func (f *Filter1D) Update(z float64) {
	s := f.Pxx + f.R
	kx := f.Pxx / s
	kv := f.Pxv / s
	innov := z - f.X
	f.X += kx * innov
	f.V += kv * innov
	// Joseph-free standard update (numerically fine at this scale).
	pxx := (1 - kx) * f.Pxx
	pxv := (1 - kx) * f.Pxv
	pvv := f.Pvv - kv*f.Pxv
	f.Pxx, f.Pxv, f.Pvv = pxx, pxv, pvv
}

// BoxFilter tracks a bounding box with four independent 1D filters.
type BoxFilter struct {
	cx, cy, w, h *Filter1D
}

// DefaultQ and DefaultR are reasonable tracking noise scales in pixels.
const (
	DefaultQ = 1.0
	DefaultR = 10.0
)

// NewBoxFilter initializes a box tracker at the given box.
func NewBoxFilter(b geom.Box, q, r float64) (*BoxFilter, error) {
	if !b.Valid() {
		return nil, fmt.Errorf("kalman: invalid initial box %+v", b)
	}
	if q == 0 {
		q = DefaultQ
	}
	if r == 0 {
		r = DefaultR
	}
	cx, cy := b.Center()
	fcx, err := NewFilter1D(cx, q, r)
	if err != nil {
		return nil, err
	}
	fcy, err := NewFilter1D(cy, q, r)
	if err != nil {
		return nil, err
	}
	fw, err := NewFilter1D(b.Width(), q/4, r)
	if err != nil {
		return nil, err
	}
	fh, err := NewFilter1D(b.Height(), q/4, r)
	if err != nil {
		return nil, err
	}
	return &BoxFilter{cx: fcx, cy: fcy, w: fw, h: fh}, nil
}

// Predict advances the tracked box by dt frames and returns the prediction.
func (bf *BoxFilter) Predict(dt float64) geom.Box {
	bf.cx.Predict(dt)
	bf.cy.Predict(dt)
	bf.w.Predict(dt)
	bf.h.Predict(dt)
	return bf.Box()
}

// Update incorporates an observed box.
func (bf *BoxFilter) Update(b geom.Box) {
	cx, cy := b.Center()
	bf.cx.Update(cx)
	bf.cy.Update(cy)
	bf.w.Update(b.Width())
	bf.h.Update(b.Height())
}

// Box returns the current box estimate. Width and height are floored at a
// pixel so the box stays valid even if the size filters drift negative.
func (bf *BoxFilter) Box() geom.Box {
	w := math.Max(bf.w.X, 1)
	h := math.Max(bf.h.X, 1)
	return geom.Box{
		X1: bf.cx.X - w/2,
		Y1: bf.cy.X - h/2,
		X2: bf.cx.X + w/2,
		Y2: bf.cy.X + h/2,
	}
}

// Velocity returns the estimated center velocity in pixels per frame.
func (bf *BoxFilter) Velocity() (vx, vy float64) { return bf.cx.V, bf.cy.V }
