package kalman

import (
	"fmt"

	"github.com/exsample/exsample/internal/geom"
)

// Smooth runs a constant-velocity Kalman filter forward over an observed
// box path and returns the filtered box at each observation. frames must be
// strictly ascending (gaps are fine — the filter predicts across them);
// boxes[i] is the observation at frames[i]. q and r follow the BoxFilter
// conventions (0 selects DefaultQ / DefaultR).
//
// The first output equals the first observation (the filter is initialized
// there); later outputs blend prediction and measurement, which is what
// suppresses per-frame detector jitter before the track-predicate
// evaluator measures positions, speeds and headings. The function is a
// pure, deterministic map from its inputs — the golden-trace tests freeze
// its exact output.
func Smooth(frames []int64, boxes []geom.Box, q, r float64) ([]geom.Box, error) {
	if len(frames) != len(boxes) {
		return nil, fmt.Errorf("kalman: %d frames but %d boxes", len(frames), len(boxes))
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("kalman: empty path")
	}
	bf, err := NewBoxFilter(boxes[0], q, r)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Box, len(boxes))
	out[0] = bf.Box()
	for i := 1; i < len(frames); i++ {
		if frames[i] <= frames[i-1] {
			return nil, fmt.Errorf("kalman: frame %d not after %d", frames[i], frames[i-1])
		}
		if !boxes[i].Valid() {
			return nil, fmt.Errorf("kalman: invalid box %+v at frame %d", boxes[i], frames[i])
		}
		bf.Predict(float64(frames[i] - frames[i-1]))
		bf.Update(boxes[i])
		out[i] = bf.Box()
	}
	return out, nil
}
