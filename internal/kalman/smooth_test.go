package kalman

import (
	"testing"

	"github.com/exsample/exsample/internal/geom"
)

// TestSmoothGoldenTrace freezes Smooth's exact output on a fixed synthetic
// trajectory: constant-velocity drift (+5 px/frame in x, +3 in y) with a
// deterministic jitter pattern and frame gaps. Any change to the filter
// constants, the prediction step or the update step shows up here as an
// exact-value mismatch — the track-predicate evaluator consumes these
// numbers verbatim, so they are part of the determinism contract.
func TestSmoothGoldenTrace(t *testing.T) {
	frames := []int64{0, 1, 2, 4, 6, 7}
	jit := []float64{0, 0.5, -0.5, 0.25, 0, -0.25}
	boxes := make([]geom.Box, len(frames))
	for i, f := range frames {
		boxes[i] = geom.Rect(10+5*float64(f)+jit[i], 20+3*float64(f), 40, 30)
	}
	got, err := Smooth(frames, boxes, 0, 0)
	if err != nil {
		t.Fatalf("Smooth: %v", err)
	}
	want := []geom.Box{
		{X1: 10, Y1: 20, X2: 50, Y2: 50}, // frame 0
		{X1: 15.04261954261954, Y1: 22.75051975051975, X2: 55.04261954261954, Y2: 52.75051975051975},   // frame 1
		{X1: 19.52621257616807, Y1: 25.86033000459698, X2: 59.52621257616807, Y2: 55.86033000459698},   // frame 2
		{X1: 29.986631644016413, Y1: 31.936350659840457, X2: 69.98663164401641, Y2: 61.93635065984046}, // frame 4
		{X1: 40.01712869324921, Y1: 37.98420939909432, X2: 80.01712869324922, Y2: 67.98420939909431},   // frame 6
		{X1: 44.856973566837524, Y1: 40.999901431221765, X2: 84.85697356683752, Y2: 70.99990143122176}, // frame 7
	}
	if len(got) != len(want) {
		t.Fatalf("Smooth returned %d boxes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frame %d: got %+v, want %+v", frames[i], got[i], want[i])
		}
	}
}

// TestSmoothConvergesToTruth checks the filter tracks an exact
// constant-velocity path closely once velocity is locked in.
func TestSmoothConvergesToTruth(t *testing.T) {
	var frames []int64
	var boxes []geom.Box
	for f := int64(0); f < 40; f++ {
		frames = append(frames, f)
		boxes = append(boxes, geom.Rect(100+4*float64(f), 200, 30, 30))
	}
	sm, err := Smooth(frames, boxes, 0, 0)
	if err != nil {
		t.Fatalf("Smooth: %v", err)
	}
	last := sm[len(sm)-1]
	truth := boxes[len(boxes)-1]
	cx, cy := last.Center()
	tx, ty := truth.Center()
	if dx := cx - tx; dx < -1 || dx > 1 {
		t.Errorf("x center off by %v after convergence", dx)
	}
	if dy := cy - ty; dy < -0.5 || dy > 0.5 {
		t.Errorf("y center off by %v after convergence", dy)
	}
}

func TestSmoothRejectsBadInput(t *testing.T) {
	b := geom.Rect(0, 0, 10, 10)
	if _, err := Smooth(nil, nil, 0, 0); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := Smooth([]int64{0, 1}, []geom.Box{b}, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Smooth([]int64{1, 1}, []geom.Box{b, b}, 0, 0); err == nil {
		t.Error("non-ascending frames accepted")
	}
	if _, err := Smooth([]int64{0, 1}, []geom.Box{b, {X1: 5, X2: 0, Y1: 0, Y2: 5}}, 0, 0); err == nil {
		t.Error("invalid box accepted")
	}
}
