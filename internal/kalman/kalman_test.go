package kalman

import (
	"math"
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/xrand"
)

func TestNewFilter1DValidation(t *testing.T) {
	if _, err := NewFilter1D(0, 0, 1); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewFilter1D(0, 1, -1); err == nil {
		t.Error("negative r accepted")
	}
}

func TestFilter1DConvergesToConstant(t *testing.T) {
	f, err := NewFilter1D(0, 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		f.Predict(1)
		f.Update(50)
	}
	if math.Abs(f.X-50) > 0.5 {
		t.Fatalf("X = %v, want ~50", f.X)
	}
	if math.Abs(f.V) > 0.2 {
		t.Fatalf("V = %v, want ~0", f.V)
	}
}

func TestFilter1DTracksRamp(t *testing.T) {
	// Measurements move at 3 units/frame; velocity estimate must converge.
	f, err := NewFilter1D(0, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		f.Predict(1)
		f.Update(float64(i) * 3)
	}
	if math.Abs(f.V-3) > 0.3 {
		t.Fatalf("V = %v, want ~3", f.V)
	}
	if math.Abs(f.X-900) > 5 {
		t.Fatalf("X = %v, want ~900", f.X)
	}
}

func TestFilter1DSmoothsNoise(t *testing.T) {
	rng := xrand.New(7)
	f, err := NewFilter1D(100, 0.05, 25)
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	const n = 500
	for i := 0; i < n; i++ {
		f.Predict(1)
		f.Update(100 + rng.Normal(0, 5))
		if i > 50 {
			errSum += math.Abs(f.X - 100)
		}
	}
	meanErr := errSum / (n - 51)
	// Raw measurements have mean abs error ~4; the filter should do much
	// better.
	if meanErr > 2 {
		t.Fatalf("mean filtered error = %v", meanErr)
	}
}

func TestFilter1DPredictGrowsUncertainty(t *testing.T) {
	f, err := NewFilter1D(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Pxx
	f.Predict(5)
	if f.Pxx <= before {
		t.Fatalf("Pxx did not grow on predict: %v -> %v", before, f.Pxx)
	}
	pre := f.Pxx
	f.Update(0)
	if f.Pxx >= pre {
		t.Fatalf("Pxx did not shrink on update: %v -> %v", pre, f.Pxx)
	}
}

func TestBoxFilterValidation(t *testing.T) {
	if _, err := NewBoxFilter(geom.Box{X1: 5, X2: 0}, 0, 0); err == nil {
		t.Error("invalid box accepted")
	}
}

func TestBoxFilterTracksMovingBox(t *testing.T) {
	bf, err := NewBoxFilter(geom.Rect(0, 0, 40, 60), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The box moves right 5 px/frame.
	for i := 1; i <= 100; i++ {
		bf.Predict(1)
		bf.Update(geom.Rect(float64(i)*5, 0, 40, 60))
	}
	// Prediction 10 frames ahead should land near x = 110*5 = 550.
	pred := bf.Predict(10)
	cx, _ := pred.Center()
	wantCX := 110*5 + 20.0
	if math.Abs(cx-wantCX) > 15 {
		t.Fatalf("predicted cx = %v, want ~%v", cx, wantCX)
	}
	vx, vy := bf.Velocity()
	if math.Abs(vx-5) > 0.5 || math.Abs(vy) > 0.5 {
		t.Fatalf("velocity = (%v, %v), want (~5, ~0)", vx, vy)
	}
}

func TestBoxFilterStaysValid(t *testing.T) {
	bf, err := NewBoxFilter(geom.Rect(10, 10, 5, 5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Feed shrinking measurements; the estimate must remain a valid box.
	for i := 0; i < 50; i++ {
		bf.Predict(1)
		bf.Update(geom.Rect(10, 10, 0.5, 0.5))
		if !bf.Box().Valid() {
			t.Fatalf("box became invalid at step %d: %+v", i, bf.Box())
		}
	}
}

func TestBoxFilterIoUWithTruthHigh(t *testing.T) {
	// Jittered measurements of a drifting box: filtered IoU with the true
	// box should stay high.
	rng := xrand.New(11)
	truth := func(i int) geom.Box { return geom.Rect(100+2*float64(i), 50+float64(i), 80, 120) }
	bf, err := NewBoxFilter(truth(0), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64 = 1
	for i := 1; i <= 200; i++ {
		bf.Predict(1)
		tb := truth(i)
		noisy := tb.Translate(rng.Normal(0, 3), rng.Normal(0, 3))
		bf.Update(noisy)
		if i > 20 {
			if iou := geom.IoU(bf.Box(), tb); iou < worst {
				worst = iou
			}
		}
	}
	if worst < 0.75 {
		t.Fatalf("worst filtered IoU = %v", worst)
	}
}
