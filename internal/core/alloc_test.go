package core

import (
	"testing"

	"github.com/exsample/exsample/internal/video"
)

// warmSampler builds a sampler and samples until every chunk's
// within-chunk order has been opened (first visit builds it lazily), so a
// subsequent allocation measurement sees only the steady-state decision
// loop.
func warmSampler(t *testing.T, nChunks int, policy Policy) *Sampler {
	t.Helper()
	chunks, err := video.SplitRange(0, int64(nChunks)*4096, nChunks)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chunks, Config{Seed: 7, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	opened := 0
	seen := make([]bool, nChunks)
	for opened < nChunks {
		p, ok := s.Next()
		if !ok {
			t.Fatal("sampler exhausted during warmup")
		}
		if !seen[p.Chunk] {
			seen[p.Chunk] = true
			opened++
		}
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSamplerDecisionAllocFree: one steady-state Thompson decision —
// score every chunk's Gamma belief, draw a frame, feed the update back —
// allocates nothing. This is the §III-F premise (sampling overhead must be
// negligible next to detector inference) expressed as a regression guard.
func TestSamplerDecisionAllocFree(t *testing.T) {
	s := warmSampler(t, 64, Thompson)
	allocs := testing.AllocsPerRun(200, func() {
		p, ok := s.Next()
		if !ok {
			t.Fatal("sampler exhausted")
		}
		if err := s.Update(p.Chunk, 1, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Thompson decision allocates %.2f objects/decision, want 0", allocs)
	}
}

// TestSamplerDecisionAllocFreeGreedy: the greedy ablation policy shares
// the same budget.
func TestSamplerDecisionAllocFreeGreedy(t *testing.T) {
	s := warmSampler(t, 64, Greedy)
	allocs := testing.AllocsPerRun(200, func() {
		p, ok := s.Next()
		if !ok {
			t.Fatal("sampler exhausted")
		}
		if err := s.Update(p.Chunk, 0, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("greedy decision allocates %.2f objects/decision, want 0", allocs)
	}
}

// TestAllocationInto reuses the caller's buffer and matches Allocation.
func TestAllocationInto(t *testing.T) {
	s := warmSampler(t, 8, Thompson)
	buf := make([]float64, 0, 8)
	got := s.AllocationInto(buf)
	want := s.Allocation()
	if len(got) != len(want) {
		t.Fatalf("AllocationInto length %d, want %d", len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("AllocationInto[%d] = %v, want %v", j, got[j], want[j])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AllocationInto did not reuse the caller's buffer")
	}
	allocs := testing.AllocsPerRun(100, func() { got = s.AllocationInto(got) })
	if allocs > 0 {
		t.Fatalf("AllocationInto with a warm buffer allocates %.2f objects/call, want 0", allocs)
	}
}

// TestSamplerColdOpenAllocs pins the first-visit path the warmed guards
// above skip: a decision that lazily opens a chunk's frame order. Before
// the order slab + in-place generator seeding, every cold open cost ~6
// allocations (generator, order struct, bitset, pending queue), which is
// exactly the drift BENCH_engine.json's sampler_decision_256 row recorded
// at ~4.5 allocs/frame on a 8192-arm sampler. Small chunks (<= 256 frames)
// now open into slab + inline storage, so 256 cold decisions amortize to
// well under one allocation each.
func TestSamplerColdOpenAllocs(t *testing.T) {
	chunks, err := video.SplitRange(0, 512*128, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chunks, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// No warm-up: most of these decisions hit never-visited chunks.
	allocs := testing.AllocsPerRun(256, func() {
		p, ok := s.Next()
		if !ok {
			t.Fatal("sampler exhausted")
		}
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.25 {
		t.Fatalf("cold-open decision allocates %.3f objects/decision, want <= 0.25 (slab-amortized)", allocs)
	}
}

// TestMaxPointEstimateAllocFree: the marginal-value read the global budget
// scheduler polls once per round must allocate nothing.
func TestMaxPointEstimateAllocFree(t *testing.T) {
	s := warmSampler(t, 64, Thompson)
	var sink float64
	allocs := testing.AllocsPerRun(200, func() { sink += s.MaxPointEstimate() })
	if allocs > 0 {
		t.Fatalf("MaxPointEstimate allocates %.2f objects/call, want 0", allocs)
	}
	_ = sink
}
