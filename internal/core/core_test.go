package core

import (
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/video"
)

func mkChunks(t *testing.T, numFrames int64, m int) []video.Chunk {
	t.Helper()
	chunks, err := video.SplitRange(0, numFrames, m)
	if err != nil {
		t.Fatal(err)
	}
	return chunks
}

func TestNewValidation(t *testing.T) {
	chunks := []video.Chunk{{ID: 0, Start: 0, End: 10}}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("no chunks accepted")
	}
	if _, err := New([]video.Chunk{{Start: 5, End: 5}}, Config{}); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, err := New(chunks, Config{Alpha0: -1}); err == nil {
		t.Error("negative alpha0 accepted")
	}
	if _, err := New(chunks, Config{Policy: Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(chunks, Config{Within: WithinChunk(99)}); err == nil {
		t.Error("unknown within order accepted")
	}
}

func TestSamplerExhaustsAllFramesOnce(t *testing.T) {
	const numFrames = 500
	s, err := New(mkChunks(t, numFrames, 8), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		if p.Frame < 0 || p.Frame >= numFrames {
			t.Fatalf("frame %d out of range", p.Frame)
		}
		if seen[p.Frame] {
			t.Fatalf("frame %d sampled twice", p.Frame)
		}
		if !s.Chunks()[p.Chunk].Contains(p.Frame) {
			t.Fatalf("frame %d not inside reported chunk %d", p.Frame, p.Chunk)
		}
		seen[p.Frame] = true
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != numFrames {
		t.Fatalf("sampled %d distinct frames, want %d", len(seen), numFrames)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next succeeded after exhaustion")
	}
}

func TestSamplerExhaustionAllPolicies(t *testing.T) {
	for _, pol := range []Policy{Thompson, BayesUCB, Greedy} {
		for _, within := range []WithinChunk{WithinRandomPlus, WithinUniform} {
			s, err := New(mkChunks(t, 200, 4), Config{Seed: 5, Policy: pol, Within: within})
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for {
				p, ok := s.Next()
				if !ok {
					break
				}
				count++
				if err := s.Update(p.Chunk, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
			if count != 200 {
				t.Errorf("%v/%v: sampled %d frames, want 200", pol, within, count)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []Pick {
		s, err := New(mkChunks(t, 300, 6), Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var picks []Pick
		for i := 0; i < 100; i++ {
			p, ok := s.Next()
			if !ok {
				break
			}
			picks = append(picks, p)
			// Pretend chunk 2 yields results.
			if p.Chunk == 2 {
				s.Update(p.Chunk, 1, 0)
			} else {
				s.Update(p.Chunk, 0, 0)
			}
		}
		return picks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAdaptationConcentratesOnRichChunk(t *testing.T) {
	// Chunk 7 always yields a new result; others never do. After a burn-in,
	// ExSample should allocate most samples to chunk 7.
	const m = 16
	s, err := New(mkChunks(t, 1600000, m), Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 2000
	for i := 0; i < steps; i++ {
		p, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		if p.Chunk == 7 {
			s.Update(p.Chunk, 1, 0)
		} else {
			s.Update(p.Chunk, 0, 0)
		}
	}
	alloc := s.Allocation()
	if alloc[7] < 0.5 {
		t.Fatalf("allocation to rich chunk = %v, want > 0.5 (alloc=%v)", alloc[7], alloc)
	}
}

func TestAdaptationRecoversFromEarlyLuck(t *testing.T) {
	// Chunk 0 yields one early result then nothing; chunk 1 yields steadily.
	// Thompson sampling must not lock onto chunk 0 (§III-B).
	s, err := New(mkChunks(t, 200000, 2), Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	first := true
	for i := 0; i < 3000; i++ {
		p, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		switch {
		case p.Chunk == 0 && first:
			s.Update(0, 1, 0)
			first = false
		case p.Chunk == 1 && i%3 == 0:
			s.Update(1, 1, 0)
		default:
			s.Update(p.Chunk, 0, 0)
		}
	}
	alloc := s.Allocation()
	if alloc[1] < 0.5 {
		t.Fatalf("allocation to steady chunk = %v, want > 0.5", alloc[1])
	}
}

func TestGreedyGetsStuckMoreThanThompson(t *testing.T) {
	// Quantifies the §III-B warning: with an early lucky result in a dead
	// chunk, greedy keeps hammering it far longer than Thompson.
	stuck := func(policy Policy) float64 {
		s, err := New(mkChunks(t, 200000, 2), Config{Seed: 17, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		// Seed chunk 0 with a lucky hit.
		for {
			p, ok := s.Next()
			if !ok {
				t.Fatal("exhausted")
			}
			if p.Chunk == 0 {
				s.Update(0, 1, 0)
				break
			}
			s.Update(p.Chunk, 0, 0)
		}
		deadDraws := 0
		for i := 0; i < 500; i++ {
			p, ok := s.Next()
			if !ok {
				break
			}
			if p.Chunk == 0 {
				deadDraws++
			}
			// Chunk 1 yields results at a decent rate; chunk 0 never again.
			if p.Chunk == 1 && i%4 == 0 {
				s.Update(1, 1, 0)
			} else {
				s.Update(p.Chunk, 0, 0)
			}
		}
		return float64(deadDraws) / 500
	}
	// The prior-smoothed point estimate decays as 1.1/(n+1), so greedy does
	// eventually leave the dead chunk; the claim under test is the relative
	// one — greedy wastes more draws there than Thompson before moving on.
	g := stuck(Greedy)
	th := stuck(Thompson)
	if g <= th {
		t.Fatalf("greedy dead-chunk fraction %v <= thompson %v; expected greedy to get stuck longer", g, th)
	}
}

func TestUpdateValidation(t *testing.T) {
	s, err := New(mkChunks(t, 100, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(-1, 0, 0); err == nil {
		t.Error("negative chunk accepted")
	}
	if err := s.Update(2, 0, 0); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if err := s.Update(0, -1, 0); err == nil {
		t.Error("negative d0 accepted")
	}
	if err := s.Update(0, 0, -1); err == nil {
		t.Error("negative d1 accepted")
	}
}

func TestStatsAndPointEstimate(t *testing.T) {
	s, err := New(mkChunks(t, 100, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(0, 2, 0)
	s.Update(0, 0, 1)
	n1, n := s.Stats(0)
	if n1 != 1 || n != 2 {
		t.Fatalf("Stats = (%d, %d)", n1, n)
	}
	// (1 + 0.1) / (2 + 1) with defaults.
	want := 1.1 / 3.0
	if got := s.PointEstimate(0); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("PointEstimate = %v, want %v", got, want)
	}
	if s.TotalSamples() != 2 {
		t.Fatalf("TotalSamples = %d", s.TotalSamples())
	}
}

func TestNegativeN1IsHandled(t *testing.T) {
	// An object found in chunk 0 and re-sighted from chunk 1 drives chunk
	// 1's N1 negative; the sampler must keep functioning.
	s, err := New(mkChunks(t, 1000, 2), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(1, 0, 1)
	s.Update(1, 0, 1)
	n1, _ := s.Stats(1)
	if n1 != -2 {
		t.Fatalf("N1 = %d", n1)
	}
	if pe := s.PointEstimate(1); pe <= 0 {
		t.Fatalf("PointEstimate = %v, want positive (floored at prior)", pe)
	}
	for i := 0; i < 100; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("sampler died on negative N1")
		}
		s.Update(0, 0, 0)
	}
}

func TestBatchedDrawsDoNotRepeatFrames(t *testing.T) {
	// The batched §III-F loop draws repeated Next picks; the
	// without-replacement within-chunk orders guarantee no frame repeats
	// however the draws are grouped into batches.
	s, err := New(mkChunks(t, 1000, 4), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 16; i++ {
		p, ok := s.Next()
		if !ok {
			t.Fatalf("sampler exhausted after %d of 16 draws", i)
		}
		if seen[p.Frame] {
			t.Fatalf("frame %d repeated within batch", p.Frame)
		}
		seen[p.Frame] = true
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllocationSumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := New(mkChunks(t, 500, 5), Config{Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			p, ok := s.Next()
			if !ok {
				break
			}
			s.Update(p.Chunk, i%2, 0)
		}
		sum := 0.0
		for _, w := range s.Allocation() {
			if w < 0 {
				return false
			}
			sum += w
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocationBeforeSampling(t *testing.T) {
	s, err := New(mkChunks(t, 100, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Allocation() {
		if w != 0 {
			t.Fatalf("Allocation before sampling = %v", s.Allocation())
		}
	}
}

func TestBayesUCBAdapts(t *testing.T) {
	s, err := New(mkChunks(t, 1600000, 8), Config{Seed: 23, Policy: BayesUCB})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		p, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		if p.Chunk == 3 {
			s.Update(p.Chunk, 1, 0)
		} else {
			s.Update(p.Chunk, 0, 0)
		}
	}
	if alloc := s.Allocation(); alloc[3] < 0.4 {
		t.Fatalf("BayesUCB allocation to rich chunk = %v", alloc[3])
	}
}

func TestPolicyAndWithinStrings(t *testing.T) {
	if Thompson.String() != "thompson" || BayesUCB.String() != "bayes-ucb" || Greedy.String() != "greedy" {
		t.Error("policy names wrong")
	}
	if WithinRandomPlus.String() != "random+" || WithinUniform.String() != "uniform" {
		t.Error("within names wrong")
	}
	if Policy(42).String() == "" || WithinChunk(42).String() == "" {
		t.Error("unknown enum String empty")
	}
}

func TestFirstDrawsSpreadAcrossChunks(t *testing.T) {
	// With identical priors Thompson breaks ties at random: over many
	// sampler instances the first pick should not always be chunk 0.
	counts := make(map[int]int)
	for seed := uint64(0); seed < 64; seed++ {
		s, err := New(mkChunks(t, 6400, 8), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p, ok := s.Next()
		if !ok {
			t.Fatal("no pick")
		}
		counts[p.Chunk]++
	}
	if len(counts) < 4 {
		t.Fatalf("first picks hit only %d distinct chunks: %v", len(counts), counts)
	}
}

// drainSampler drives a sampler to exhaustion, returning the picks.
func drainSampler(t *testing.T, s *Sampler) []Pick {
	t.Helper()
	var picks []Pick
	for {
		p, ok := s.Next()
		if !ok {
			return picks
		}
		picks = append(picks, p)
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendGrowsArms(t *testing.T) {
	base := mkChunks(t, 400, 4)
	s, err := New(base, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	extra := []video.Chunk{{ID: 4, Start: 400, End: 500}, {ID: 5, Start: 500, End: 600}}
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
	if got := s.NumChunks(); got != 6 {
		t.Fatalf("NumChunks = %d, want 6", got)
	}
	if err := s.Append([]video.Chunk{{Start: 5, End: 5}}); err == nil {
		t.Fatal("empty appended chunk accepted")
	}
	seen := make(map[int64]bool)
	for _, p := range drainSampler(t, s) {
		if seen[p.Frame] {
			t.Fatalf("frame %d sampled twice", p.Frame)
		}
		seen[p.Frame] = true
	}
	if len(seen) != 600 {
		t.Fatalf("sampled %d distinct frames, want 600 (base + appended)", len(seen))
	}
}

// TestDisabledArmConsumesNoRandomness is the byte-identity property behind
// elastic drains: a sampler with an appended-then-disabled arm must produce
// exactly the pick sequence of a sampler that never saw the arm.
func TestDisabledArmConsumesNoRandomness(t *testing.T) {
	for _, pol := range []Policy{Thompson, BayesUCB, Greedy} {
		ref, err := New(mkChunks(t, 300, 3), Config{Seed: 11, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		churned, err := New(mkChunks(t, 300, 3), Config{Seed: 11, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		if err := churned.Append([]video.Chunk{{ID: 3, Start: 300, End: 350}}); err != nil {
			t.Fatal(err)
		}
		if err := churned.SetEnabled(3, false); err != nil {
			t.Fatal(err)
		}
		refPicks := drainSampler(t, ref)
		gotPicks := drainSampler(t, churned)
		if len(refPicks) != len(gotPicks) {
			t.Fatalf("%v: %d picks with fenced arm, want %d", pol, len(gotPicks), len(refPicks))
		}
		for i := range refPicks {
			if refPicks[i] != gotPicks[i] {
				t.Fatalf("%v: pick %d = %+v, want %+v", pol, i, gotPicks[i], refPicks[i])
			}
		}
	}
}

func TestSetEnabledFencesAndReadmits(t *testing.T) {
	chunks := mkChunks(t, 200, 4)
	s, err := New(chunks, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEnabled(99, false); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if err := s.SetEnabled(1, false); err != nil {
		t.Fatal(err)
	}
	if s.Enabled(1) {
		t.Fatal("chunk 1 still enabled after fence")
	}
	for i := 0; i < 150; i++ {
		p, ok := s.Next()
		if !ok {
			break
		}
		if p.Chunk == 1 {
			t.Fatalf("pick %d drawn from fenced chunk 1", i)
		}
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Updates for in-flight picks of a fenced chunk still apply.
	if err := s.Update(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if n1, n := s.Stats(1); n1 != 1 || n != 1 {
		t.Fatalf("fenced chunk stats = (%d, %d), want (1, 1)", n1, n)
	}
	// Re-admitting the chunk makes the rest of the repository reachable.
	if err := s.SetEnabled(1, true); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		seen[p.Frame] = true
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for f := chunks[1].Start; f < chunks[1].End; f++ {
		if !seen[f] {
			t.Fatalf("frame %d of re-admitted chunk never sampled", f)
		}
	}
}

func TestAllArmsDisabledExhausts(t *testing.T) {
	s, err := New(mkChunks(t, 100, 2), Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if err := s.SetEnabled(j, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next succeeded with every arm fenced")
	}
}

// TestMaxPointEstimate covers the marginal-value semantics the global
// budget allocator depends on: fresh samplers report the prior, misses
// decay the value, hits raise it, fenced arms are invisible, and an
// exhausted sampler reports zero.
func TestMaxPointEstimate(t *testing.T) {
	chunks, err := video.SplitRange(0, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chunks, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prior := DefaultAlpha0 / DefaultBeta0
	if got := s.MaxPointEstimate(); got != prior {
		t.Fatalf("fresh sampler MaxPointEstimate = %v, want prior %v", got, prior)
	}
	// Misses on one chunk decay it; the untouched chunks hold the max at
	// the prior.
	for i := 0; i < 5; i++ {
		if err := s.Update(0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MaxPointEstimate(); got != prior {
		t.Fatalf("after misses on one arm MaxPointEstimate = %v, want prior %v (other arms untouched)", got, prior)
	}
	// A hit raises the max above the prior.
	if err := s.Update(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	want := (2 + DefaultAlpha0) / (1 + DefaultBeta0)
	if got := s.MaxPointEstimate(); got != want {
		t.Fatalf("after 2 hits MaxPointEstimate = %v, want %v", got, want)
	}
	// Fencing the hot arm hides it.
	if err := s.SetEnabled(1, false); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxPointEstimate(); got != prior {
		t.Fatalf("with hot arm fenced MaxPointEstimate = %v, want prior %v", got, prior)
	}
	if err := s.SetEnabled(1, true); err != nil {
		t.Fatal(err)
	}
	// Draining every frame drops the value to zero.
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if got := s.MaxPointEstimate(); got != 0 {
		t.Fatalf("exhausted sampler MaxPointEstimate = %v, want 0", got)
	}
}
