package core

import (
	"testing"

	"github.com/exsample/exsample/internal/video"
)

func TestScoredWithinValidation(t *testing.T) {
	chunks := []video.Chunk{{ID: 0, Start: 0, End: 10}}
	// WithinScored without a scorer is rejected.
	if _, err := New(chunks, Config{Within: WithinScored}); err == nil {
		t.Error("WithinScored without scorer accepted")
	}
	// A scorer with a non-scored order is rejected.
	if _, err := New(chunks, Config{Scorer: func(int64) float64 { return 0 }}); err == nil {
		t.Error("scorer with random+ order accepted")
	}
	if _, err := New(chunks, Config{Within: WithinScored, Scorer: func(int64) float64 { return 0 }}); err != nil {
		t.Errorf("valid scored config rejected: %v", err)
	}
}

func TestScoredWithinFollowsScores(t *testing.T) {
	chunks, err := video.SplitRange(0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chunks, Config{
		Within: WithinScored,
		Scorer: func(f int64) float64 { return float64(f) }, // prefer later frames
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(1 << 62)
	for i := 0; i < 100; i++ {
		p, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		if p.Frame >= prev {
			t.Fatalf("scored order not descending: %d after %d", p.Frame, prev)
		}
		prev = p.Frame
		if err := s.Update(p.Chunk, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnChunkOpenFiresOncePerChunk(t *testing.T) {
	chunks, err := video.SplitRange(0, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	opened := make(map[int]int)
	s, err := New(chunks, Config{
		Seed:        3,
		OnChunkOpen: func(j int) { opened[j]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p, ok := s.Next()
		if !ok {
			break
		}
		s.Update(p.Chunk, 0, 0)
	}
	if len(opened) != 4 {
		t.Fatalf("opened %d chunks, want 4", len(opened))
	}
	for j, c := range opened {
		if c != 1 {
			t.Fatalf("chunk %d opened %d times", j, c)
		}
	}
}

func TestAdjust(t *testing.T) {
	chunks, err := video.SplitRange(0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chunks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Adjust(0, 3); err != nil {
		t.Fatal(err)
	}
	n1, n := s.Stats(0)
	if n1 != 3 || n != 0 {
		t.Fatalf("Stats = (%d, %d); Adjust must not count a sample", n1, n)
	}
	if err := s.Adjust(0, -5); err != nil {
		t.Fatal(err)
	}
	if n1, _ := s.Stats(0); n1 != -2 {
		t.Fatalf("N1 = %d", n1)
	}
	if err := s.Adjust(-1, 1); err == nil {
		t.Error("negative chunk accepted")
	}
	if err := s.Adjust(2, 1); err == nil {
		t.Error("out-of-range chunk accepted")
	}
}
