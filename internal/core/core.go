// Package core implements the paper's primary contribution: the ExSample
// chunk-based adaptive sampler (Algorithm 1).
//
// The repository is partitioned into M chunks. For each chunk j the sampler
// tracks n[j], the number of frames sampled from the chunk, and N1[j], the
// (signed) count of result objects currently seen exactly once whose
// sightings bookkeeping is charged to the chunk. The estimate of the number
// of new results the next sample from chunk j will produce is
//
//	R̂_j = N1[j] / n[j]                            (Eq. III.1)
//
// and the belief distribution accounting for estimate uncertainty is
//
//	R_j ~ Gamma(alpha = N1[j]+α0, beta = n[j]+β0)  (Eq. III.4)
//
// Thompson sampling draws one value from each chunk's belief and samples a
// frame from the arg-max chunk; the (α0, β0) prior keeps the belief
// well-defined when N1 = 0 and lets chunks recover from early bad luck.
package core

import (
	"fmt"

	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// Policy selects how chunk scores are derived from the per-chunk beliefs.
type Policy int

const (
	// Thompson draws a random sample from each chunk's Gamma belief
	// (Eq. III.4) and picks the arg max. This is the paper's method.
	Thompson Policy = iota
	// BayesUCB scores each chunk by an upper quantile of its Gamma belief,
	// the alternative the paper reports behaves indistinguishably (§III-C).
	BayesUCB
	// Greedy uses the raw point estimate N1/n with random tie-breaking. The
	// paper warns this gets stuck on early lucky chunks (§III-B); it exists
	// for the ablation benchmarks.
	Greedy
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Thompson:
		return "thompson"
	case BayesUCB:
		return "bayes-ucb"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// WithinChunk selects the without-replacement frame order inside a chunk.
type WithinChunk int

const (
	// WithinRandomPlus stratifies samples inside the chunk (random+,
	// §III-F), the paper's default for ExSample.
	WithinRandomPlus WithinChunk = iota
	// WithinUniform samples uniformly without replacement.
	WithinUniform
	// WithinScored orders frames inside a chunk by a caller-provided score
	// (descending). §VII notes the chunk estimates remain valid under
	// non-uniform within-chunk sampling; this is the building block of the
	// ExSample+proxy fusion, which scores only the chunks actually visited
	// instead of scanning the whole dataset. Requires Config.Scorer.
	WithinScored
)

// String returns the order name.
func (w WithinChunk) String() string {
	switch w {
	case WithinRandomPlus:
		return "random+"
	case WithinUniform:
		return "uniform"
	case WithinScored:
		return "scored"
	default:
		return fmt.Sprintf("within(%d)", int(w))
	}
}

// Config parameterizes a Sampler.
type Config struct {
	// Alpha0 and Beta0 are the belief prior (Eq. III.4). The paper uses
	// α0 = 0.1 and β0 = 1 and reports weak sensitivity to the choice.
	// Zero values select those defaults.
	Alpha0 float64
	Beta0  float64
	// Policy is the chunk-selection policy (default Thompson).
	Policy Policy
	// Within is the frame order inside a chunk (default random+).
	Within WithinChunk
	// Seed drives all sampler randomness; runs with the same seed, chunks
	// and update sequence are identical.
	Seed uint64
	// Scorer supplies per-frame scores for WithinScored; it is consulted
	// lazily, once per frame of each chunk that is actually sampled. It
	// must be nil for other within-chunk orders.
	Scorer func(frame int64) float64
	// OnChunkOpen, if set, is called the first time a chunk's frame order
	// is built (e.g. to charge per-chunk scoring cost in a fusion setup).
	OnChunkOpen func(chunk int)
	// CachedFrac, if set, enables cache-aware tie-breaking: when the
	// policy's top scores tie within TieEpsilon, Next prefers the chunk
	// with the higher CachedFrac(chunk) — the fraction of the chunk's
	// frames already resident in a result cache, where sampling is
	// near-free. The function must be cheap (it is consulted only on
	// ties) and side-effect-free. Crucially the tie-break consumes no
	// randomness: every enabled arm's score is drawn exactly as without
	// it, so a sampler with CachedFrac set but no ties — or one whose
	// cached fractions are all equal — picks byte-identically to one
	// without.
	CachedFrac func(chunk int) float64
	// TieEpsilon is the relative tie width for CachedFrac: scores a and b
	// tie when hi-lo <= TieEpsilon*hi. Zero selects DefaultTieEpsilon;
	// it must be left zero when CachedFrac is nil.
	TieEpsilon float64
}

// DefaultAlpha0 and DefaultBeta0 are the paper's prior (§III-C).
const (
	DefaultAlpha0 = 0.1
	DefaultBeta0  = 1.0
)

// DefaultTieEpsilon is the default relative tie width for cache-aware
// tie-breaking: 5% — wide enough that near-identical beliefs (where the
// policy's choice is effectively arbitrary) defer to the cache signal,
// narrow enough that a genuinely better arm is never overridden.
const DefaultTieEpsilon = 0.05

func (c Config) withDefaults() Config {
	if c.Alpha0 == 0 {
		c.Alpha0 = DefaultAlpha0
	}
	if c.Beta0 == 0 {
		c.Beta0 = DefaultBeta0
	}
	if c.CachedFrac != nil && c.TieEpsilon == 0 {
		c.TieEpsilon = DefaultTieEpsilon
	}
	return c
}

// Validate reports an error for out-of-range parameters.
func (c Config) Validate() error {
	if c.Alpha0 < 0 || c.Beta0 < 0 {
		return fmt.Errorf("core: negative prior (alpha0=%v beta0=%v)", c.Alpha0, c.Beta0)
	}
	switch c.Policy {
	case Thompson, BayesUCB, Greedy:
	default:
		return fmt.Errorf("core: unknown policy %d", int(c.Policy))
	}
	if c.TieEpsilon < 0 || c.TieEpsilon >= 1 {
		return fmt.Errorf("core: TieEpsilon %v outside [0, 1)", c.TieEpsilon)
	}
	if c.TieEpsilon != 0 && c.CachedFrac == nil {
		return fmt.Errorf("core: TieEpsilon set but CachedFrac is nil")
	}
	switch c.Within {
	case WithinRandomPlus, WithinUniform:
		if c.Scorer != nil {
			return fmt.Errorf("core: Scorer set but within-chunk order is %v", c.Within)
		}
	case WithinScored:
		if c.Scorer == nil {
			return fmt.Errorf("core: WithinScored requires a Scorer")
		}
	default:
		return fmt.Errorf("core: unknown within-chunk order %d", int(c.Within))
	}
	return nil
}

// Pick is one sampling decision: the frame to process and the chunk it was
// drawn from. Updates must be reported against the same chunk.
type Pick struct {
	Frame int64
	Chunk int
}

// Sampler is the ExSample decision loop state. It owns which frame to look
// at next; the caller owns running the detector and discriminator and must
// feed the resulting (d0, d1) sizes back via Update.
type Sampler struct {
	cfg    Config
	chunks []video.Chunk
	orders []video.FrameOrder
	n1     []int64
	n      []int64
	// disabled marks arms fenced by an elastic topology change (a draining
	// shard's chunks): Next never scores or draws from them — crucially,
	// skipping happens before the policy's RNG draw, so a disabled arm
	// consumes no randomness and the remaining arms' pick sequence is
	// exactly what it would be if the arm had never existed. Update and
	// Adjust still accept disabled arms, so in-flight picks apply cleanly.
	disabled []bool
	total    int64 // total frames sampled across chunks
	live     int   // chunks with frames remaining
	rng      *xrand.RNG
	// rpSlab backs lazily opened random+ orders in blocks, so the cold
	// chunk opens of a many-armed sampler amortize to ~1 allocation per
	// slab instead of several per chunk.
	rpSlab []video.RandomPlusOrder
}

// rpSlabSize is the random+ order slab block size; 64 keeps a block around
// 16 KiB while amortizing the cold-open allocation well below one per
// decision.
const rpSlabSize = 64

// New creates a sampler over the given chunks. Chunks must be non-empty and
// non-overlapping; they are the sampler's arms.
func New(chunks []video.Chunk, cfg Config) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(chunks) == 0 {
		return nil, fmt.Errorf("core: no chunks")
	}
	for i, c := range chunks {
		if c.Len() <= 0 {
			return nil, fmt.Errorf("core: chunk %d is empty", i)
		}
	}
	s := &Sampler{
		cfg:      cfg,
		chunks:   append([]video.Chunk(nil), chunks...),
		orders:   make([]video.FrameOrder, len(chunks)),
		n1:       make([]int64, len(chunks)),
		n:        make([]int64, len(chunks)),
		disabled: make([]bool, len(chunks)),
		live:     len(chunks),
		rng:      xrand.New(cfg.Seed),
	}
	return s, nil
}

// Append adds new arms for chunks that joined the repository after the
// sampler was built (an elastic shard attach). New arms start at the belief
// prior, exactly as if they had been present from the start with no
// samples; existing arms' statistics, frame orders and — because each
// chunk's within-chunk order derives from (Seed, chunk id), not the shared
// policy RNG — their future frame draws are unaffected. Chunk ids continue
// the existing numbering: the i-th appended chunk becomes arm
// NumChunks()+i, so callers indexing arms by global chunk id stay aligned.
func (s *Sampler) Append(chunks []video.Chunk) error {
	for i, c := range chunks {
		if c.Len() <= 0 {
			return fmt.Errorf("core: appended chunk %d is empty", i)
		}
	}
	s.chunks = append(s.chunks, chunks...)
	s.orders = append(s.orders, make([]video.FrameOrder, len(chunks))...)
	s.n1 = append(s.n1, make([]int64, len(chunks))...)
	s.n = append(s.n, make([]int64, len(chunks))...)
	s.disabled = append(s.disabled, make([]bool, len(chunks))...)
	s.live += len(chunks)
	return nil
}

// SetEnabled fences or re-admits an arm. A disabled arm is invisible to
// Next — not scored (so it consumes no policy randomness) and never drawn
// from — but keeps its statistics and continues to accept Update/Adjust
// for picks already in flight. This is the sampler half of draining a
// shard: the shard's chunks are fenced while the belief state of every
// other chunk carries on untouched.
func (s *Sampler) SetEnabled(chunk int, enabled bool) error {
	if chunk < 0 || chunk >= len(s.chunks) {
		return fmt.Errorf("core: chunk %d out of range [0, %d)", chunk, len(s.chunks))
	}
	s.disabled[chunk] = !enabled
	return nil
}

// Enabled reports whether an arm is currently pickable.
func (s *Sampler) Enabled(chunk int) bool { return !s.disabled[chunk] }

// order lazily builds the within-chunk frame order for chunk j.
func (s *Sampler) order(j int) (video.FrameOrder, error) {
	if s.orders[j] != nil {
		return s.orders[j], nil
	}
	c := s.chunks[j]
	var (
		o   video.FrameOrder
		err error
	)
	switch s.cfg.Within {
	case WithinUniform:
		o, err = video.NewUniformOrder(c.Start, c.End, xrand.NewFrom(s.cfg.Seed, uint64(j)+1))
	case WithinScored:
		o, err = video.NewScoredOrder(c.Start, c.End, s.cfg.Scorer)
	default:
		// Random+ (the default) opens in place into the order slab: the
		// (Seed, chunk id) stream derivation is identical to handing
		// NewRandomPlusOrder a fresh xrand.NewFrom generator, but the open
		// itself is amortized allocation-free.
		if len(s.rpSlab) == 0 {
			s.rpSlab = make([]video.RandomPlusOrder, rpSlabSize)
		}
		rp := &s.rpSlab[0]
		s.rpSlab = s.rpSlab[1:]
		err = rp.Init(c.Start, c.End, 0, s.cfg.Seed, uint64(j)+1)
		o = rp
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.OnChunkOpen != nil {
		s.cfg.OnChunkOpen(j)
	}
	s.orders[j] = o
	return o, nil
}

// alphaBeta returns the belief parameters for chunk j. Per-chunk N1 can go
// negative when an object discovered in one chunk is re-sighted from
// another (the -1 of the update lands on the re-sighting chunk), so alpha is
// floored at the prior to keep the Gamma well-defined; the technical report
// describes the same adjustment for instances spanning chunks.
func (s *Sampler) alphaBeta(j int) (alpha, beta float64) {
	alpha = float64(s.n1[j]) + s.cfg.Alpha0
	if alpha < s.cfg.Alpha0 {
		alpha = s.cfg.Alpha0
	}
	if alpha <= 0 {
		alpha = 1e-9 // alpha0 = 0 with no positive results yet
	}
	beta = float64(s.n[j]) + s.cfg.Beta0
	if beta <= 0 {
		beta = 1e-9
	}
	return alpha, beta
}

// score computes the chunk's selection score under the configured policy.
func (s *Sampler) score(j int) float64 {
	alpha, beta := s.alphaBeta(j)
	switch s.cfg.Policy {
	case BayesUCB:
		// Quantile level 1 - 1/(t+1) grows with total samples t, the
		// schedule from Kaufmann's Bayes-UCB (§III-C reference [18]).
		level := 1 - 1/float64(s.total+2)
		q, err := stats.GammaQuantile(level, alpha, beta)
		if err != nil {
			// Extremely defensive: fall back to the mean.
			return alpha / beta
		}
		return q
	case Greedy:
		// Point estimate with vanishing random tie-break so identical
		// estimates (e.g. at start) don't collapse onto chunk 0.
		return alpha/beta + 1e-12*s.rng.Float64()
	default:
		return s.rng.Gamma(alpha, beta)
	}
}

// Next returns the next frame to process: the Thompson (or alternative
// policy) choice of chunk, and a frame drawn from that chunk's
// without-replacement order. Disabled arms are skipped without being
// scored. ok is false when every enabled chunk is exhausted.
//
// With Config.CachedFrac set, arms whose scores tie within TieEpsilon are
// broken toward the higher cached fraction (equal fractions keep the higher
// score). Every enabled arm's score is still drawn, in the same order, so
// the RNG stream is identical with and without the tie-break.
func (s *Sampler) Next() (Pick, bool) {
	for s.live > 0 {
		best, bestScore := -1, 0.0
		bestFrac := -1.0 // best's cached fraction, computed lazily on first tie
		for j := range s.chunks {
			if s.disabled[j] {
				continue
			}
			if s.orders[j] != nil && s.orders[j].Remaining() == 0 {
				continue
			}
			sc := s.score(j)
			if best == -1 {
				best, bestScore = j, sc
				continue
			}
			if s.cfg.CachedFrac != nil && tied(sc, bestScore, s.cfg.TieEpsilon) {
				if bestFrac < 0 {
					bestFrac = s.cfg.CachedFrac(best)
				}
				f := s.cfg.CachedFrac(j)
				if f > bestFrac || (f == bestFrac && sc > bestScore) {
					best, bestScore, bestFrac = j, sc, f
				}
				continue
			}
			if sc > bestScore {
				best, bestScore, bestFrac = j, sc, -1
			}
		}
		if best == -1 {
			return Pick{}, false
		}
		o, err := s.order(best)
		if err != nil {
			return Pick{}, false
		}
		frame, ok := o.Next()
		if !ok {
			// Chunk exhausted between the score pass and the draw.
			s.live--
			continue
		}
		if o.Remaining() == 0 {
			s.live--
		}
		return Pick{Frame: frame, Chunk: best}, true
	}
	return Pick{}, false
}

// tied reports whether two policy scores fall within the relative tie
// width: hi-lo <= eps*hi.
func tied(a, b, eps float64) bool {
	hi, lo := a, b
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi-lo <= eps*hi
}

// Update feeds back the discriminator's classification of the detections
// found in a frame sampled from the given chunk: d0 = detections that
// matched no previous result (new objects), d1 = detections whose object had
// been seen exactly once before (Algorithm 1, lines 11–12).
func (s *Sampler) Update(chunk int, d0, d1 int) error {
	if chunk < 0 || chunk >= len(s.chunks) {
		return fmt.Errorf("core: chunk %d out of range [0, %d)", chunk, len(s.chunks))
	}
	if d0 < 0 || d1 < 0 {
		return fmt.Errorf("core: negative counts d0=%d d1=%d", d0, d1)
	}
	s.n1[chunk] += int64(d0) - int64(d1)
	s.n[chunk]++
	s.total++
	return nil
}

// Adjust applies a raw N1 delta to a chunk without counting a sample. It
// implements the technical report's cross-chunk accounting: when an object
// discovered from chunk A is re-sighted while sampling chunk B, the -1 of
// the "seen exactly once" bookkeeping belongs to A (where the object's +1
// lives), not to B. Callers using this pass d1 as per-home-chunk deltas and
// report Update(chunk, d0, 0) for the sampled chunk.
func (s *Sampler) Adjust(chunk int, delta int64) error {
	if chunk < 0 || chunk >= len(s.chunks) {
		return fmt.Errorf("core: chunk %d out of range [0, %d)", chunk, len(s.chunks))
	}
	s.n1[chunk] += delta
	return nil
}

// Stats returns chunk j's current (N1, n).
func (s *Sampler) Stats(j int) (n1, n int64) { return s.n1[j], s.n[j] }

// PointEstimate returns the prior-smoothed point estimate
// (N1+α0)/(n+β0) for chunk j.
func (s *Sampler) PointEstimate(j int) float64 {
	alpha, beta := s.alphaBeta(j)
	return alpha / beta
}

// MaxPointEstimate returns the largest prior-smoothed point estimate
// (N1+α0)/(n+β0) across arms the sampler can still draw from — enabled
// chunks with frames remaining (an unopened chunk counts as having frames,
// matching Next). Because the next pick comes from the arg-max belief, this
// is the sampler's expected new results from its next frame: the marginal
// value a cross-query scheduler compares when dividing a global detector
// budget. A fresh or just-woken sampler reports the prior α0/β0; an
// exhausted one reports 0. Allocation-free.
func (s *Sampler) MaxPointEstimate() float64 {
	best := 0.0
	for j := range s.chunks {
		if s.disabled[j] {
			continue
		}
		if s.orders[j] != nil && s.orders[j].Remaining() == 0 {
			continue
		}
		if e := s.PointEstimate(j); e > best {
			best = e
		}
	}
	return best
}

// TotalSamples returns the number of frames sampled so far.
func (s *Sampler) TotalSamples() int64 { return s.total }

// NumChunks returns the number of arms.
func (s *Sampler) NumChunks() int { return len(s.chunks) }

// Chunks returns the chunk layout (copy-on-construction slice; do not
// mutate).
func (s *Sampler) Chunks() []video.Chunk { return s.chunks }

// Allocation returns the fraction of samples taken from each chunk, the
// de-facto weight vector the sampler has converged to (§IV-A). It
// allocates a fresh slice per call; decision-loop callers that poll it per
// round should use AllocationInto with a reused buffer instead.
func (s *Sampler) Allocation() []float64 {
	return s.AllocationInto(nil)
}

// AllocationInto is Allocation writing into dst, growing it only when its
// capacity is short — the reusable-scores-buffer shape the steady-state
// engine uses so per-round stats polling stays allocation-free.
func (s *Sampler) AllocationInto(dst []float64) []float64 {
	if cap(dst) < len(s.n) {
		dst = make([]float64, len(s.n))
	}
	dst = dst[:len(s.n)]
	if s.total == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return dst
	}
	for j, nj := range s.n {
		dst[j] = float64(nj) / float64(s.total)
	}
	return dst
}
