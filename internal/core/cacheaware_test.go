package core

import (
	"testing"
)

// Tests for the cache-aware tie-break (Config.CachedFrac / TieEpsilon).

func TestCacheAwareValidation(t *testing.T) {
	chunks := mkChunks(t, 100, 4)
	if _, err := New(chunks, Config{TieEpsilon: 0.1}); err == nil {
		t.Error("TieEpsilon without CachedFrac accepted")
	}
	frac := func(int) float64 { return 0 }
	if _, err := New(chunks, Config{CachedFrac: frac, TieEpsilon: -0.1}); err == nil {
		t.Error("negative TieEpsilon accepted")
	}
	if _, err := New(chunks, Config{CachedFrac: frac, TieEpsilon: 1}); err == nil {
		t.Error("TieEpsilon 1 accepted")
	}
	if _, err := New(chunks, Config{CachedFrac: frac}); err != nil {
		t.Errorf("CachedFrac with defaulted epsilon rejected: %v", err)
	}
}

// TestCacheAwareZeroFracIdentity: with every chunk's cached fraction 0 the
// tie-break resolves to the higher score — the unaware rule — so the pick
// sequence is identical draw for draw. This is what keeps a cold
// cache-aware engine byte-identical to Search.
func TestCacheAwareZeroFracIdentity(t *testing.T) {
	const seed = 17
	mk := func(aware bool) *Sampler {
		cfg := Config{Seed: seed}
		if aware {
			cfg.CachedFrac = func(int) float64 { return 0 }
		}
		s, err := New(mkChunks(t, 2000, 8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain, aware := mk(false), mk(true)
	for i := 0; i < 2000; i++ {
		p1, ok1 := plain.Next()
		p2, ok2 := aware.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("draw %d diverged: plain=%v,%v aware=%v,%v", i, p1, ok1, p2, ok2)
		}
		if !ok1 {
			break
		}
		// Feed identical, score-perturbing updates so beliefs move.
		d1 := 0
		if p1.Frame%7 == 0 {
			d1 = 1
		}
		if err := plain.Update(p1.Chunk, 1-d1, d1); err != nil {
			t.Fatal(err)
		}
		if err := aware.Update(p2.Chunk, 1-d1, d1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheAwareConsumesNoExtraRandomness: enabling the tie-break must not
// change how many RNG draws a decision consumes — every enabled arm is
// scored exactly once either way — so downstream draws stay aligned.
// Uniform equal fractions exercise the tie path on nearly every decision.
func TestCacheAwareConsumesNoExtraRandomness(t *testing.T) {
	const seed = 99
	mk := func(frac func(int) float64) *Sampler {
		s, err := New(mkChunks(t, 1000, 4), Config{Seed: seed, CachedFrac: frac})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	equalLow := mk(func(int) float64 { return 0.2 })
	equalHigh := mk(func(int) float64 { return 0.9 })
	// Same seed, fractions tied everywhere at different levels: tie-breaks
	// fall through to score order both times, so sequences match exactly —
	// proof the fraction lookup itself never touches the RNG.
	for i := 0; i < 1000; i++ {
		p1, ok1 := equalLow.Next()
		p2, ok2 := equalHigh.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("draw %d diverged under equal-fraction tie-breaking: %v vs %v", i, p1, p2)
		}
		if !ok1 {
			break
		}
		if err := equalLow.Update(p1.Chunk, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := equalHigh.Update(p2.Chunk, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheAwarePrefersCachedOnTies: with fresh identical beliefs (scores
// drawn from the same distribution, frequently within epsilon) a chunk
// with a high cached fraction is drawn from far more often than under the
// unaware rule.
func TestCacheAwarePrefersCachedOnTies(t *testing.T) {
	const hot = 2
	count := func(aware bool) int {
		cfg := Config{Seed: 5, TieEpsilon: 0.5}
		if !aware {
			cfg = Config{Seed: 5}
		}
		if aware {
			cfg.CachedFrac = func(j int) float64 {
				if j == hot {
					return 1
				}
				return 0
			}
		}
		s, err := New(mkChunks(t, 8000, 8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Concentrate every chunk's belief identically: with large equal
		// alphas the Gamma scores cluster tightly around a shared mean, so
		// nearly every decision is a tie within epsilon — the regime the
		// tie-break is for. (At the raw prior, Gamma(0.1) draws span orders
		// of magnitude and relative ties are rare.)
		for j := 0; j < s.NumChunks(); j++ {
			for r := 0; r < 10; r++ {
				if err := s.Update(j, 9, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		picks := 0
		for i := 0; i < 500; i++ {
			p, ok := s.Next()
			if !ok {
				break
			}
			if p.Chunk == hot {
				picks++
			}
		}
		return picks
	}
	aware, plain := count(true), count(false)
	if aware <= plain {
		t.Fatalf("cache-aware drew the hot chunk %d times, unaware %d — no preference realized", aware, plain)
	}
	// With concentrated beliefs and a fully cached hot chunk the
	// preference should be strong, not marginal.
	if aware < 2*plain && aware < 300 {
		t.Fatalf("preference too weak: aware=%d plain=%d", aware, plain)
	}
}

func TestTiedHelper(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1.0, 1.0, 0.05, true},
		{1.0, 0.96, 0.05, true},
		{1.0, 0.94, 0.05, false},
		{0.96, 1.0, 0.05, true}, // symmetric
		{0, 0, 0.05, true},
		{1.0, 0.5, 0.5, true},
		{1.0, 0.49, 0.5, false},
	}
	for _, c := range cases {
		if got := tied(c.a, c.b, c.eps); got != c.want {
			t.Errorf("tied(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}
