package bench

import (
	"fmt"
	"io"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/sim"
	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/synth"
)

// AblationConfig parameterizes the design-choice ablations DESIGN.md calls
// out: decision policy (Thompson vs Bayes-UCB vs greedy), within-chunk order
// (random+ vs uniform), and prior strength (α0). Each variant runs the same
// skewed workload; the metric is median samples to reach a target count.
type AblationConfig struct {
	NumInstances int
	NumFrames    int64
	NumChunks    int
	Skew         float64
	MeanDur      float64
	Target       int64
	Budget       int64
	Trials       int
	Alpha0Values []float64
	Seed         uint64
}

// DefaultAblation uses the Fig. 3 (1/32, 700) cell at reduced scale.
func DefaultAblation() AblationConfig {
	return AblationConfig{
		NumInstances: 2000,
		NumFrames:    2_000_000,
		NumChunks:    128,
		Skew:         1.0 / 32,
		MeanDur:      700,
		Target:       500,
		Budget:       20_000,
		Trials:       5,
		Alpha0Values: []float64{0.01, 0.1, 1, 10},
		Seed:         67,
	}
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	// MedianSamples to reach Target (0 = missed in a majority of trials).
	MedianSamples float64
	// Reached counts trials that reached the target.
	Reached int
}

// AblationResult holds all variants.
type AblationResult struct {
	Config AblationConfig
	Rows   []AblationRow
}

// RunAblation executes all variants.
func RunAblation(cfg AblationConfig) (*AblationResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("bench: ablation needs trials")
	}
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: cfg.NumInstances,
		NumFrames:    cfg.NumFrames,
		SkewFraction: cfg.Skew,
		MeanDuration: cfg.MeanDur,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	run := func(variant string, coreCfg core.Config) (AblationRow, error) {
		row := AblationRow{Variant: variant}
		var vals []float64
		for t := 0; t < cfg.Trials; t++ {
			n, ok, err := sim.SamplesToReach(sim.MethodExSample, sim.ChunkSimConfig{
				Instances: instances,
				NumFrames: cfg.NumFrames,
				NumChunks: cfg.NumChunks,
				Budget:    cfg.Budget,
				Core:      coreCfg,
				Seed:      cfg.Seed + uint64(t)*31337,
			}, cfg.Target)
			if err != nil {
				return row, err
			}
			if ok {
				row.Reached++
				vals = append(vals, float64(n))
			}
		}
		if row.Reached*2 > cfg.Trials {
			m, err := stats.Median(vals)
			if err != nil {
				return row, err
			}
			row.MedianSamples = m
		}
		return row, nil
	}

	res := &AblationResult{Config: cfg}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"thompson/random+ (paper)", core.Config{Policy: core.Thompson, Within: core.WithinRandomPlus}},
		{"bayes-ucb/random+", core.Config{Policy: core.BayesUCB, Within: core.WithinRandomPlus}},
		{"greedy/random+", core.Config{Policy: core.Greedy, Within: core.WithinRandomPlus}},
		{"thompson/uniform-within", core.Config{Policy: core.Thompson, Within: core.WithinUniform}},
	}
	for _, v := range variants {
		row, err := run(v.name, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", v.name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, a0 := range cfg.Alpha0Values {
		row, err := run(fmt.Sprintf("thompson alpha0=%g", a0),
			core.Config{Policy: core.Thompson, Within: core.WithinRandomPlus, Alpha0: a0})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	// Random baseline for reference.
	var rndVals []float64
	rndReached := 0
	for t := 0; t < cfg.Trials; t++ {
		n, ok, err := sim.SamplesToReach(sim.MethodRandom, sim.ChunkSimConfig{
			Instances: instances,
			NumFrames: cfg.NumFrames,
			Budget:    cfg.Budget,
			Seed:      cfg.Seed + uint64(t)*31337,
		}, cfg.Target)
		if err != nil {
			return nil, err
		}
		if ok {
			rndReached++
			rndVals = append(rndVals, float64(n))
		}
	}
	rndRow := AblationRow{Variant: "random (reference)", Reached: rndReached}
	if rndReached*2 > cfg.Trials {
		if m, err := stats.Median(rndVals); err == nil {
			rndRow.MedianSamples = m
		}
	}
	res.Rows = append(res.Rows, rndRow)
	return res, nil
}

// Render writes the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Ablations — median samples to %d results (skew %s, duration %.0f, %d chunks, %d trials)\n",
		r.Config.Target, skewLabel(r.Config.Skew), r.Config.MeanDur, r.Config.NumChunks, r.Config.Trials)
	for _, row := range r.Rows {
		if row.MedianSamples > 0 {
			writef(w, &err, "%-28s %10.0f samples  (reached %d/%d)\n",
				row.Variant, row.MedianSamples, row.Reached, r.Config.Trials)
		} else {
			writef(w, &err, "%-28s %10s          (reached %d/%d)\n",
				row.Variant, "-", row.Reached, r.Config.Trials)
		}
	}
	writef(w, &err, "\n")
	return err
}
