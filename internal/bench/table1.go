package bench

import (
	"fmt"
	"io"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/costmodel"
	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/metrics"
)

// Table1Config parameterizes the Table I reproduction: for every dataset ×
// object class, the proxy baseline's full-scan time versus the time
// ExSample needs to reach 10%, 50% and 90% of all distinct instances.
type Table1Config struct {
	// Scale shrinks datasets (frames and populations together). Scan and
	// sampling times shrink by the same factor, so the comparison the table
	// makes — scan cost vs time-to-recall — is preserved.
	Scale float64
	// Recalls are the columns (paper: 0.1, 0.5, 0.9).
	Recalls []float64
	// Profiles restricts to named datasets (nil = all six).
	Profiles []string
	// Seed drives dataset generation and sampling.
	Seed uint64
}

// DefaultTable1 runs all datasets at 5% scale.
func DefaultTable1() Table1Config {
	return Table1Config{Scale: 0.05, Recalls: []float64{0.1, 0.5, 0.9}, Seed: 7}
}

// Table1Row is one (dataset, class) line.
type Table1Row struct {
	Dataset string
	Class   string
	// ScanSeconds is the proxy scoring pass over the full dataset.
	ScanSeconds float64
	// RecallSeconds[k] is ExSample's time to reach Recalls[k]; -1 when the
	// recall level was not reached within the frame budget.
	RecallSeconds []float64
	// Instances is the distinct ground-truth population searched.
	Instances int
}

// Table1Result is the rendered table's data.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
	// BeatScanCount counts rows where even 90% recall arrives before the
	// proxy scan would have finished — the paper reports this holds for
	// every query.
	BeatScanCount int
}

// RunTable1 executes the experiment.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("bench: table1 scale %v outside (0,1]", cfg.Scale)
	}
	if len(cfg.Recalls) == 0 {
		return nil, fmt.Errorf("bench: table1 needs recall levels")
	}
	want := make(map[string]bool)
	for _, p := range cfg.Profiles {
		want[p] = true
	}
	cost := costmodel.Default()
	res := &Table1Result{Config: cfg}
	for _, p := range datasets.Profiles() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		ds, err := datasets.Build(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", p.Name, err)
		}
		scan := cost.ScanSeconds(ds.Repo.NumFrames())
		for _, q := range p.Queries {
			row, err := runTable1Query(ds, q.Class, cfg, cost)
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %s/%s: %w", p.Name, q.Class, err)
			}
			row.Dataset = p.Name
			row.ScanSeconds = scan
			res.Rows = append(res.Rows, row)
			last := row.RecallSeconds[len(row.RecallSeconds)-1]
			if last >= 0 && last < scan {
				res.BeatScanCount++
			}
		}
	}
	return res, nil
}

// runTable1Query runs one ExSample search to the highest recall level,
// recording the time each level was crossed.
func runTable1Query(ds *datasets.Dataset, class string, cfg Table1Config, cost costmodel.Model) (Table1Row, error) {
	row := Table1Row{Class: class, RecallSeconds: make([]float64, len(cfg.Recalls))}
	for i := range row.RecallSeconds {
		row.RecallSeconds[i] = -1
	}
	total := ds.CountByClass[class]
	row.Instances = total

	detector, err := detect.NewSim(ds.Index, cfg.Seed^0xace,
		detect.WithClass(class), detect.WithCost(1/cost.DetectFPS))
	if err != nil {
		return row, err
	}
	ext, err := discrim.NewTruthExtender(ds.Index, 1)
	if err != nil {
		return row, err
	}
	dis, err := discrim.New(ext, 0)
	if err != nil {
		return row, err
	}
	curve, err := metrics.NewRecallCurve(total)
	if err != nil {
		return row, err
	}
	sampler, err := core.New(ds.Chunks, core.Config{Seed: cfg.Seed})
	if err != nil {
		return row, err
	}

	var frames int64
	budget := ds.Repo.NumFrames()
	maxRecall := cfg.Recalls[len(cfg.Recalls)-1]
	for frames < budget {
		p, ok := sampler.Next()
		if !ok {
			break
		}
		frames++
		dets := detector.Detect(p.Frame)
		d0, d1 := dis.Observe(p.Frame, dets)
		if err := sampler.Update(p.Chunk, len(d0), len(d1)); err != nil {
			return row, err
		}
		if len(d0) > 0 {
			ids := make([]int, len(d0))
			for i, det := range d0 {
				ids[i] = det.TruthID
			}
			curve.Observe(frames, cost.DetectSeconds(frames), ids)
			rec := curve.Recall()
			for k, level := range cfg.Recalls {
				if row.RecallSeconds[k] < 0 && rec >= level {
					row.RecallSeconds[k] = cost.DetectSeconds(frames)
				}
			}
			if rec >= maxRecall {
				break
			}
		}
	}
	return row, nil
}

// Render writes the Table I reproduction.
func (r *Table1Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Table I — proxy scan time vs ExSample time to recall (scale %.2f)\n", r.Config.Scale)
	writef(w, &err, "%-12s %-14s %6s %10s |", "dataset", "category", "N", "proxy scan")
	for _, rec := range r.Config.Recalls {
		writef(w, &err, " %8.0f%%", rec*100)
	}
	writef(w, &err, "\n")
	for _, row := range r.Rows {
		writef(w, &err, "%-12s %-14s %6d %10s |", row.Dataset, row.Class, row.Instances,
			costmodel.FormatDuration(row.ScanSeconds))
		for _, s := range row.RecallSeconds {
			if s < 0 {
				writef(w, &err, " %9s", "-")
			} else {
				writef(w, &err, " %9s", costmodel.FormatDuration(s))
			}
		}
		writef(w, &err, "\n")
	}
	writef(w, &err, "\nqueries where ExSample reaches the top recall before the proxy scan ends: %d / %d\n\n",
		r.BeatScanCount, len(r.Rows))
	return err
}
