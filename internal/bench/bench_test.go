package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestLogCheckpoints(t *testing.T) {
	cps, err := LogCheckpoints(10, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cps[0] != 10 || cps[len(cps)-1] != 10000 {
		t.Fatalf("endpoints = %d..%d", cps[0], cps[len(cps)-1])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("not ascending: %v", cps)
		}
	}
	// ~3 per decade over 3 decades.
	if len(cps) < 8 || len(cps) > 14 {
		t.Fatalf("%d checkpoints: %v", len(cps), cps)
	}
}

func TestLogCheckpointsErrors(t *testing.T) {
	if _, err := LogCheckpoints(0, 10, 3); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := LogCheckpoints(10, 5, 3); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := LogCheckpoints(1, 10, 0); err == nil {
		t.Error("perDecade=0 accepted")
	}
}

func TestFmtRatio(t *testing.T) {
	cases := map[float64]string{
		3.912: "3.9x",
		0.79:  "0.79x",
		84:    "84x",
		0:     "-",
	}
	for in, want := range cases {
		if got := fmtRatio(in); got != want {
			t.Errorf("fmtRatio(%v) = %q, want %q", in, got, want)
		}
	}
}

func tinyFig2() Fig2Config {
	cfg := DefaultFig2()
	cfg.NumInstances = 300
	cfg.Runs = 60
	cfg.Probes = []int64{100, 5000, 40000}
	return cfg
}

func TestFig2ShapesHold(t *testing.T) {
	res, err := RunFig2(tinyFig2())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Count == 0 {
			t.Fatalf("row n=%d has no samples", row.N)
		}
		// Belief mean should be within an order of magnitude of truth at
		// mid/late n (the paper's "fits the histograms very well" regime).
		if row.N >= 5000 && row.ActualMean > 0 {
			ratio := row.BeliefMean / row.ActualMean
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("n=%d: belief mean %v vs actual %v", row.N, row.BeliefMean, row.ActualMean)
			}
		}
		// Coverage should be substantial (paper reports ~80% under
		// dependence; independent simulation should be >= that).
		if row.N >= 5000 && row.Coverage95 < 0.6 {
			t.Errorf("n=%d: coverage %v", row.N, row.Coverage95)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing header")
	}
}

func tinyFig3() Fig3Config {
	cfg := DefaultFig3()
	cfg.NumInstances = 400
	cfg.NumFrames = 400_000
	cfg.NumChunks = 64
	cfg.Trials = 3
	cfg.Budget = 4000
	cfg.Skews = []float64{0, 1.0 / 32}
	cfg.MeanDurs = []float64{700}
	cfg.Targets = []int64{10, 100}
	return cfg
}

func TestFig3SkewBeatsNoSkew(t *testing.T) {
	res, err := RunFig3(tinyFig3())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	noSkew := res.cell(0, 700)
	skewed := res.cell(1.0/32, 700)
	if noSkew == nil || skewed == nil {
		t.Fatal("cells missing")
	}
	// Savings at 100 results must be larger under skew than without.
	if skewed.SavingsAt[1] <= noSkew.SavingsAt[1] {
		t.Errorf("skewed savings %v <= no-skew %v", skewed.SavingsAt[1], noSkew.SavingsAt[1])
	}
	if skewed.SavingsAt[1] < 1.3 {
		t.Errorf("skewed savings %v, want > 1.3", skewed.SavingsAt[1])
	}
	// Without skew ExSample is not significantly worse (paper: 0.79x worst).
	if noSkew.SavingsAt[1] != 0 && noSkew.SavingsAt[1] < 0.6 {
		t.Errorf("no-skew savings %v, want >= 0.6", noSkew.SavingsAt[1])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing header")
	}
}

func TestFig3OptionalOptimalCurve(t *testing.T) {
	cfg := tinyFig3()
	cfg.Skews = []float64{1.0 / 32}
	cfg.Targets = []int64{10}
	cfg.OptCheckpoints = 4
	cfg.NumInstances = 200
	cfg.NumChunks = 16
	cfg.Budget = 2000
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cells[0]
	if len(cell.OptimalCurve) == 0 {
		t.Fatal("no optimal curve")
	}
	for i := 1; i < len(cell.OptimalCurve); i++ {
		if cell.OptimalCurve[i] < cell.OptimalCurve[i-1]-1e-6 {
			t.Fatalf("optimal curve not monotone: %v", cell.OptimalCurve)
		}
	}
}

func TestFig4ChunkSweep(t *testing.T) {
	cfg := DefaultFig4()
	cfg.NumInstances = 400
	cfg.NumFrames = 400_000
	cfg.Trials = 3
	cfg.Budget = 4000
	cfg.ChunkCounts = []int{1, 16, 128}
	cfg.Checkpoints = []int64{500, 2000, 4000}
	cfg.WithOptimal = false
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Compare mid-trajectory (the final checkpoint saturates near the full
	// population, hiding differences). 1 chunk == random sampling.
	one := res.Series[0].Found[1]
	rnd := res.Random.Found[1]
	if one < rnd*0.7 || one > rnd*1.3 {
		t.Errorf("1-chunk found %v vs random %v; should be equivalent", one, rnd)
	}
	// A well-chosen chunk count beats 1 chunk under skew.
	sixteen := res.Series[1].Found[1]
	if sixteen <= one {
		t.Errorf("16 chunks found %v <= 1 chunk %v under skew", sixteen, one)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render missing header")
	}
}

func TestTable1ScanDominates(t *testing.T) {
	cfg := DefaultTable1()
	cfg.Scale = 0.02
	cfg.Profiles = []string{"dashcam", "bdd1k"}
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 { // 7 dashcam + 8 bdd1k
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's claim: for all queries, 90% recall arrives before the
	// proxy scan completes. Allow a small number of exceptions at tiny
	// scale.
	if res.BeatScanCount < len(res.Rows)-2 {
		t.Errorf("only %d/%d queries beat the scan", res.BeatScanCount, len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ScanSeconds <= 0 {
			t.Fatalf("%s/%s: no scan time", row.Dataset, row.Class)
		}
		// Times to higher recall are monotone where reached.
		prev := -1.0
		for _, s := range row.RecallSeconds {
			if s < 0 {
				continue
			}
			if s < prev {
				t.Fatalf("%s/%s: recall times not monotone: %v", row.Dataset, row.Class, row.RecallSeconds)
			}
			prev = s
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render missing header")
	}
}

func TestFig5SavingsShape(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Scale = 0.02
	cfg.Trials = 3
	cfg.Profiles = []string{"dashcam"}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.OverallGeoMean <= 0 {
		t.Fatal("no overall geomean")
	}
	// ExSample should on average beat random on these skewed profiles.
	if res.OverallGeoMean < 1.0 {
		t.Errorf("overall geomean %v < 1", res.OverallGeoMean)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestFig6Panels(t *testing.T) {
	cfg := DefaultFig6()
	cfg.Scale = 0.1
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 5 {
		t.Fatalf("%d panels", len(res.Panels))
	}
	byName := map[string]Fig6Panel{}
	for _, p := range res.Panels {
		byName[p.Dataset+"/"+p.Class] = p
		if p.N <= 0 || p.S <= 0 || p.HalfChunks <= 0 {
			t.Fatalf("bad panel %+v", p)
		}
	}
	// Skew ordering from the paper.
	if byName["dashcam/bicycle"].S < byName["archie/car"].S {
		t.Error("dashcam/bicycle should be more skewed than archie/car")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("render missing header")
	}
}

func TestAblationVariants(t *testing.T) {
	cfg := DefaultAblation()
	cfg.NumInstances = 400
	cfg.NumFrames = 400_000
	cfg.NumChunks = 64
	cfg.Target = 100
	cfg.Budget = 4000
	cfg.Trials = 3
	cfg.Alpha0Values = []float64{0.1, 1}
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 named variants + 2 alpha values + random reference.
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var paper, random *AblationRow
	for i := range res.Rows {
		switch res.Rows[i].Variant {
		case "thompson/random+ (paper)":
			paper = &res.Rows[i]
		case "random (reference)":
			random = &res.Rows[i]
		}
	}
	if paper == nil || random == nil {
		t.Fatal("expected variants missing")
	}
	if paper.MedianSamples <= 0 {
		t.Fatal("paper variant missed target")
	}
	if random.MedianSamples > 0 && paper.MedianSamples >= random.MedianSamples {
		t.Errorf("paper variant %v samples >= random %v on skewed workload",
			paper.MedianSamples, random.MedianSamples)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Error("render missing header")
	}
}

func TestRunValidationErrors(t *testing.T) {
	if _, err := RunFig3(Fig3Config{}); err == nil {
		t.Error("empty fig3 config accepted")
	}
	if _, err := RunFig4(Fig4Config{}); err == nil {
		t.Error("empty fig4 config accepted")
	}
	if _, err := RunTable1(Table1Config{}); err == nil {
		t.Error("empty table1 config accepted")
	}
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Error("empty fig5 config accepted")
	}
	if _, err := RunFig6(Fig6Config{}); err == nil {
		t.Error("empty fig6 config accepted")
	}
	if _, err := RunAblation(AblationConfig{}); err == nil {
		t.Error("empty ablation config accepted")
	}
}
