package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/video"
	"github.com/exsample/exsample/internal/xrand"
)

// Fig5Config parameterizes the savings-per-query experiment: for every
// dataset × class, the ratio of random sampling's time to ExSample's time to
// reach each recall level (the paper reports a 1.9x geometric mean, up to
// ~6x best case, ~0.75x worst case).
type Fig5Config struct {
	Scale    float64
	Recalls  []float64
	Trials   int
	Profiles []string // nil = all six
	Seed     uint64
}

// DefaultFig5 runs all 43 queries at 5% scale with 3 trials.
func DefaultFig5() Fig5Config {
	return Fig5Config{Scale: 0.05, Recalls: []float64{0.1, 0.5, 0.9}, Trials: 3, Seed: 17}
}

// Fig5Row is one query's savings at each recall level.
type Fig5Row struct {
	Dataset string
	Class   string
	// Savings[k] is median(random seconds)/median(exsample seconds) to
	// reach Recalls[k]; 0 when either method missed the level.
	Savings []float64
}

// Fig5Result aggregates all queries.
type Fig5Result struct {
	Config Fig5Config
	Rows   []Fig5Row
	// GeoMean[k] is the geometric mean of non-zero savings at Recalls[k].
	GeoMean []float64
	// OverallGeoMean pools every (query, recall) savings ratio, the paper's
	// headline 1.9x.
	OverallGeoMean float64
	// Max and Min are the extreme pooled ratios.
	Max, Min float64
}

// RunFig5 executes the experiment.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("bench: fig5 scale %v outside (0,1]", cfg.Scale)
	}
	if cfg.Trials <= 0 || len(cfg.Recalls) == 0 {
		return nil, fmt.Errorf("bench: fig5 needs trials and recall levels")
	}
	want := make(map[string]bool)
	for _, p := range cfg.Profiles {
		want[p] = true
	}
	res := &Fig5Result{Config: cfg}
	for _, p := range datasets.Profiles() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		ds, err := datasets.Build(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: fig5 %s: %w", p.Name, err)
		}
		for _, q := range p.Queries {
			row, err := runFig5Query(ds, q.Class, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: fig5 %s/%s: %w", p.Name, q.Class, err)
			}
			row.Dataset = p.Name
			res.Rows = append(res.Rows, row)
		}
	}
	res.finishAggregates()
	return res, nil
}

func (r *Fig5Result) finishAggregates() {
	r.GeoMean = make([]float64, len(r.Config.Recalls))
	var pooled []float64
	for k := range r.Config.Recalls {
		var vals []float64
		for _, row := range r.Rows {
			if row.Savings[k] > 0 {
				vals = append(vals, row.Savings[k])
			}
		}
		if g, err := stats.GeoMean(vals); err == nil {
			r.GeoMean[k] = g
		}
		pooled = append(pooled, vals...)
	}
	if g, err := stats.GeoMean(pooled); err == nil {
		r.OverallGeoMean = g
	}
	if len(pooled) > 0 {
		sort.Float64s(pooled)
		r.Min = pooled[0]
		r.Max = pooled[len(pooled)-1]
	}
}

// samplesToRecalls runs one search, returning the frame count at which each
// recall level was crossed (-1 when missed).
func samplesToRecalls(ds *datasets.Dataset, class string, recalls []float64,
	useExSample bool, seed uint64) ([]int64, error) {

	detector, err := detect.NewSim(ds.Index, seed^0xbee,
		detect.WithClass(class), detect.WithCost(1.0/20))
	if err != nil {
		return nil, err
	}
	ext, err := discrim.NewTruthExtender(ds.Index, 1)
	if err != nil {
		return nil, err
	}
	dis, err := discrim.New(ext, 0)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewRecallCurve(ds.CountByClass[class])
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(recalls))
	for i := range out {
		out[i] = -1
	}

	var next func() (int64, int, bool)
	var update func(chunk, d0, d1 int) error
	if useExSample {
		sampler, err := core.New(ds.Chunks, core.Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		next = func() (int64, int, bool) {
			p, ok := sampler.Next()
			return p.Frame, p.Chunk, ok
		}
		update = sampler.Update
	} else {
		order, err := video.NewUniformOrder(0, ds.Repo.NumFrames(), xrand.New(seed))
		if err != nil {
			return nil, err
		}
		next = func() (int64, int, bool) {
			f, ok := order.Next()
			return f, 0, ok
		}
		update = func(int, int, int) error { return nil }
	}

	var frames int64
	maxRecall := recalls[len(recalls)-1]
	for frames < ds.Repo.NumFrames() {
		frame, chunk, ok := next()
		if !ok {
			break
		}
		frames++
		d0, d1 := dis.Observe(frame, detector.Detect(frame))
		if err := update(chunk, len(d0), len(d1)); err != nil {
			return nil, err
		}
		if len(d0) == 0 {
			continue
		}
		ids := make([]int, len(d0))
		for i, det := range d0 {
			ids[i] = det.TruthID
		}
		curve.Observe(frames, 0, ids)
		rec := curve.Recall()
		for k, level := range recalls {
			if out[k] < 0 && rec >= level {
				out[k] = frames
			}
		}
		if rec >= maxRecall {
			break
		}
	}
	return out, nil
}

func runFig5Query(ds *datasets.Dataset, class string, cfg Fig5Config) (Fig5Row, error) {
	row := Fig5Row{Class: class, Savings: make([]float64, len(cfg.Recalls))}
	exAt := make([][]float64, len(cfg.Recalls))
	rndAt := make([][]float64, len(cfg.Recalls))
	for t := 0; t < cfg.Trials; t++ {
		seed := cfg.Seed + uint64(t)*6151
		ex, err := samplesToRecalls(ds, class, cfg.Recalls, true, seed)
		if err != nil {
			return row, err
		}
		rnd, err := samplesToRecalls(ds, class, cfg.Recalls, false, seed)
		if err != nil {
			return row, err
		}
		for k := range cfg.Recalls {
			if ex[k] > 0 {
				exAt[k] = append(exAt[k], float64(ex[k]))
			}
			if rnd[k] > 0 {
				rndAt[k] = append(rndAt[k], float64(rnd[k]))
			}
		}
	}
	for k := range cfg.Recalls {
		if len(exAt[k])*2 <= cfg.Trials || len(rndAt[k])*2 <= cfg.Trials {
			continue
		}
		exMed, err := stats.Median(exAt[k])
		if err != nil {
			return row, err
		}
		rndMed, err := stats.Median(rndAt[k])
		if err != nil {
			return row, err
		}
		if exMed > 0 {
			row.Savings[k] = rndMed / exMed
		}
	}
	return row, nil
}

// Render writes the Figure 5 savings table, one row per query, sorted by
// savings at the first recall level (descending, like the paper's bars).
func (r *Fig5Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Figure 5 — time savings of ExSample vs random per query (scale %.2f, %d trials)\n",
		r.Config.Scale, r.Config.Trials)
	writef(w, &err, "%-12s %-14s |", "dataset", "category")
	for _, rec := range r.Config.Recalls {
		writef(w, &err, " rec=%-5.1f", rec)
	}
	writef(w, &err, "\n")
	rows := append([]Fig5Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Savings[0] > rows[j].Savings[0] })
	for _, row := range rows {
		writef(w, &err, "%-12s %-14s |", row.Dataset, row.Class)
		for _, s := range row.Savings {
			writef(w, &err, " %9s", fmtRatio(s))
		}
		writef(w, &err, "\n")
	}
	writef(w, &err, "\ngeometric mean per recall:")
	for k, rec := range r.Config.Recalls {
		writef(w, &err, "  %.1f: %s", rec, fmtRatio(r.GeoMean[k]))
	}
	writef(w, &err, "\noverall geometric mean: %s (min %s, max %s)\n\n",
		fmtRatio(r.OverallGeoMean), fmtRatio(r.Min), fmtRatio(r.Max))
	return err
}
