package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtensionsBenchmark(t *testing.T) {
	cfg := DefaultExtensions()
	cfg.NumFrames = 200_000
	cfg.NumInstances = 200
	cfg.ChunkFrames = 200_000 / 32
	cfg.Trials = 3
	res, err := RunExtensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]ExtensionsRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
		if r.MedianSeconds <= 0 || r.MedianFrames <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	paper := byName["exsample (paper)"]
	random := byName["random"]
	proxy := byName["proxy (full scan)"]
	fusion := byName["exsample + fusion (§VII scoring)"]
	if paper.MedianSeconds >= random.MedianSeconds {
		t.Errorf("exsample %v s >= random %v s under skew", paper.MedianSeconds, random.MedianSeconds)
	}
	if paper.MedianSeconds >= proxy.MedianSeconds {
		t.Errorf("exsample %v s >= proxy %v s", paper.MedianSeconds, proxy.MedianSeconds)
	}
	// Fusion trades detector frames for per-chunk scoring: comparable
	// frame counts to plain ExSample (generous 2x noise bound at this tiny
	// scale), and always cheaper than the full scan.
	if fusion.MedianFrames > paper.MedianFrames*2 {
		t.Errorf("fusion frames %v >> plain %v", fusion.MedianFrames, paper.MedianFrames)
	}
	if fusion.MedianSeconds >= proxy.MedianSeconds {
		t.Errorf("fusion %v s >= full proxy %v s", fusion.MedianSeconds, proxy.MedianSeconds)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Extensions") {
		t.Error("render missing header")
	}
}

func TestExtensionsValidation(t *testing.T) {
	if _, err := RunExtensions(ExtensionsConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}
