package bench

import (
	"fmt"
	"io"

	"github.com/exsample/exsample/internal/stats"

	exsample "github.com/exsample/exsample"
)

// ExtensionsConfig parameterizes the benchmark of the §VII future-work
// features implemented beyond the paper's evaluation: proxy fusion within
// chunks, automated chunking, home-chunk accounting, and the trained-proxy
// baseline, all on one skewed workload.
type ExtensionsConfig struct {
	NumFrames    int64
	NumInstances int
	MeanDuration float64
	Skew         float64
	ChunkFrames  int64
	RecallTarget float64
	Trials       int
	Seed         uint64
}

// DefaultExtensions uses a strongly skewed single-class workload.
func DefaultExtensions() ExtensionsConfig {
	return ExtensionsConfig{
		NumFrames:    1_000_000,
		NumInstances: 800,
		MeanDuration: 400,
		Skew:         1.0 / 32,
		ChunkFrames:  1_000_000 / 64,
		RecallTarget: 0.5,
		Trials:       3,
		Seed:         211,
	}
}

// ExtensionsRow is one variant's outcome.
type ExtensionsRow struct {
	Variant string
	// MedianSeconds is the charged time to the recall target (including
	// scans where applicable).
	MedianSeconds float64
	// MedianFrames is the detector frames to the recall target.
	MedianFrames float64
}

// ExtensionsResult aggregates all variants.
type ExtensionsResult struct {
	Config ExtensionsConfig
	Rows   []ExtensionsRow
}

// RunExtensions executes the benchmark through the public API.
func RunExtensions(cfg ExtensionsConfig) (*ExtensionsResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("bench: extensions needs trials")
	}
	ds, err := exsample.Synthesize(exsample.SynthSpec{
		NumFrames:    cfg.NumFrames,
		NumInstances: cfg.NumInstances,
		Class:        "event",
		MeanDuration: cfg.MeanDuration,
		SkewFraction: cfg.Skew,
		ChunkFrames:  cfg.ChunkFrames,
		Seed:         cfg.Seed,
	}, exsample.WithPerfectDetector())
	if err != nil {
		return nil, err
	}
	q := exsample.Query{Class: "event", RecallTarget: cfg.RecallTarget}
	variants := []struct {
		name string
		opts exsample.Options
	}{
		{"exsample (paper)", exsample.Options{}},
		{"exsample + fusion (§VII scoring)", exsample.Options{FuseProxyWithinChunk: true}},
		{"exsample + autochunk (§VII)", exsample.Options{AutoChunk: true}},
		{"exsample + home accounting", exsample.Options{HomeChunkAccounting: true}},
		{"random", exsample.Options{Strategy: exsample.StrategyRandom}},
		{"proxy (full scan)", exsample.Options{Strategy: exsample.StrategyProxy}},
		{"proxy + training labels", exsample.Options{Strategy: exsample.StrategyProxy, ProxyTrainPositives: 10}},
	}
	res := &ExtensionsResult{Config: cfg}
	for _, v := range variants {
		var secs, frames []float64
		for t := 0; t < cfg.Trials; t++ {
			opts := v.opts
			opts.Seed = cfg.Seed + uint64(t)*911
			rep, err := ds.Search(q, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: extensions %s: %w", v.name, err)
			}
			secs = append(secs, rep.TotalSeconds())
			frames = append(frames, float64(rep.FramesProcessed))
		}
		ms, err := stats.Median(secs)
		if err != nil {
			return nil, err
		}
		mf, err := stats.Median(frames)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtensionsRow{Variant: v.name, MedianSeconds: ms, MedianFrames: mf})
	}
	return res, nil
}

// Render writes the extension comparison table.
func (r *ExtensionsResult) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Extensions — charged time to %.0f%% recall (skew %s, %d trials)\n",
		r.Config.RecallTarget*100, skewLabel(r.Config.Skew), r.Config.Trials)
	writef(w, &err, "%-34s %12s %12s\n", "variant", "seconds", "frames")
	for _, row := range r.Rows {
		writef(w, &err, "%-34s %12.1f %12.0f\n", row.Variant, row.MedianSeconds, row.MedianFrames)
	}
	writef(w, &err, "\n")
	return err
}
