package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/metrics"
)

// Fig6Config selects the representative queries whose per-chunk instance
// distribution and skew metric the paper visualizes.
type Fig6Config struct {
	Scale   float64
	Queries []Fig6Query
	Seed    uint64
}

// Fig6Query names one (dataset, class) panel.
type Fig6Query struct {
	Dataset string
	Class   string
}

// DefaultFig6 uses the paper's five panels.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Scale: 0.25,
		Queries: []Fig6Query{
			{"dashcam", "bicycle"},
			{"bdd1k", "motor"},
			{"night-street", "person"},
			{"archie", "car"},
			{"amsterdam", "boat"},
		},
		Seed: 11,
	}
}

// Fig6Panel is one query's skew summary.
type Fig6Panel struct {
	Dataset string
	Class   string
	// N is the distinct instance count (paper annotates each panel).
	N int
	// S is the skew metric (half the chunks divided by the minimum chunk
	// set covering half the instances).
	S float64
	// HalfChunks is that minimum chunk-set size (the blue bars).
	HalfChunks int
	// Histogram is the per-chunk instance count.
	Histogram []int
}

// Fig6Result holds all panels.
type Fig6Result struct {
	Config Fig6Config
	Panels []Fig6Panel
}

// RunFig6 computes the panels.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("bench: fig6 scale %v outside (0,1]", cfg.Scale)
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("bench: fig6 needs queries")
	}
	res := &Fig6Result{Config: cfg}
	built := make(map[string]*datasets.Dataset)
	for _, q := range cfg.Queries {
		ds, ok := built[q.Dataset]
		if !ok {
			p, err := datasets.ProfileByName(q.Dataset)
			if err != nil {
				return nil, err
			}
			ds, err = datasets.Build(p, cfg.Scale, cfg.Seed)
			if err != nil {
				return nil, err
			}
			built[q.Dataset] = ds
		}
		instances := ds.ClassInstances(q.Class)
		if len(instances) == 0 {
			return nil, fmt.Errorf("bench: fig6 %s/%s has no instances", q.Dataset, q.Class)
		}
		hist := metrics.ChunkHistogram(instances, ds.Chunks)
		s, err := metrics.SkewMetric(hist)
		if err != nil {
			return nil, err
		}
		k, err := metrics.MinChunksForHalf(hist)
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Fig6Panel{
			Dataset:    q.Dataset,
			Class:      q.Class,
			N:          len(instances),
			S:          s,
			HalfChunks: k,
			Histogram:  hist,
		})
	}
	return res, nil
}

// Render writes the panels with ASCII chunk histograms.
func (r *Fig6Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Figure 6 — instance skew for representative queries (scale %.2f)\n\n", r.Config.Scale)
	for _, p := range r.Panels {
		writef(w, &err, "%s/%s: N=%d  S=%.1f  (half the instances in %d of %d chunks)\n",
			p.Dataset, p.Class, p.N, p.S, p.HalfChunks, len(p.Histogram))
		writef(w, &err, "  %s\n\n", sparkline(p.Histogram, 64))
	}
	return err
}

// sparkline renders chunk counts as a fixed-width ASCII bar profile.
func sparkline(hist []int, width int) string {
	if len(hist) == 0 {
		return ""
	}
	// Downsample to width buckets by max-pooling.
	buckets := make([]int, width)
	for i, c := range hist {
		b := i * width / len(hist)
		if c > buckets[b] {
			buckets[b] = c
		}
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat("_", width)
	}
	levels := []byte("_.:-=+*#%@")
	var sb strings.Builder
	for _, c := range buckets {
		idx := c * (len(levels) - 1) / max
		sb.WriteByte(levels[idx])
	}
	return sb.String()
}
