// Package bench implements the experiment harness: one runner per table and
// figure of the paper's evaluation, each producing the same rows/series the
// paper reports. Runners accept a Scale knob so the full experiments (hours
// at paper size) can be exercised end-to-end in seconds during tests and
// benchmarks; shapes — who wins, rough factors, crossovers — are preserved
// at reduced scale, and EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"io"
	"math"
)

// LogCheckpoints returns ~perDecade sample counts per decade between lo and
// hi (inclusive), ascending and deduplicated — the x axis of Figures 3/4.
func LogCheckpoints(lo, hi int64, perDecade int) ([]int64, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("bench: bad checkpoint range [%d, %d]", lo, hi)
	}
	if perDecade <= 0 {
		return nil, fmt.Errorf("bench: perDecade must be positive, got %d", perDecade)
	}
	var out []int64
	step := math.Pow(10, 1/float64(perDecade))
	x := float64(lo)
	prev := int64(0)
	for {
		v := int64(math.Round(x))
		if v > hi {
			break
		}
		if v != prev {
			out = append(out, v)
			prev = v
		}
		x *= step
	}
	if prev != hi {
		out = append(out, hi)
	}
	return out, nil
}

// writef writes formatted output, propagating the first error through a
// shared pointer so render functions stay linear.
func writef(w io.Writer, errp *error, format string, args ...any) {
	if *errp != nil {
		return
	}
	_, *errp = fmt.Fprintf(w, format, args...)
}

// fmtRatio renders a savings ratio the way the paper labels them ("3.9x",
// "0.79x").
func fmtRatio(r float64) string {
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		return "-"
	}
	if r >= 10 {
		return fmt.Sprintf("%.0fx", r)
	}
	return fmt.Sprintf("%.2gx", r)
}
