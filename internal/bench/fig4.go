package bench

import (
	"fmt"
	"io"

	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/opt"
	"github.com/exsample/exsample/internal/sim"
	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/video"
)

// Fig4Config parameterizes the §IV-C chunk-count sweep: fixed workload
// (skew 1/32, mean duration 700 — the third row/column cell of Figure 3),
// varying the number of chunks across orders of magnitude.
type Fig4Config struct {
	NumInstances int
	NumFrames    int64
	Skew         float64
	MeanDur      float64
	ChunkCounts  []int
	Trials       int
	Budget       int64
	// Checkpoints are the sample counts at which trajectories are recorded.
	Checkpoints []int64
	// WithOptimal also computes the Eq. IV.1 dashed curves per chunk count.
	WithOptimal bool
	Seed        uint64
}

// DefaultFig4 mirrors the paper's sweep (1..1024 chunks) at reduced scale.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		NumInstances: 2000,
		NumFrames:    2_000_000,
		Skew:         1.0 / 32,
		MeanDur:      700,
		ChunkCounts:  []int{1, 2, 16, 128, 1024},
		Trials:       7,
		Budget:       20_000,
		Checkpoints:  []int64{100, 300, 1000, 3000, 10_000, 20_000},
		WithOptimal:  true,
		Seed:         47,
	}
}

// Fig4Series is the trajectory for one chunk count.
type Fig4Series struct {
	NumChunks int
	// Found[k] is the median distinct count after Checkpoints[k] samples.
	Found []float64
	// Band[k] is the 25–75% band at each checkpoint.
	Bands []metrics.Band
	// Optimal[k] is the Eq. IV.1 expected count with per-n optimal static
	// weights (nil unless WithOptimal).
	Optimal []float64
}

// Fig4Result is the full sweep, including the random baseline as the
// 1-chunk degenerate case plus an explicit random series.
type Fig4Result struct {
	Config Fig4Config
	Series []Fig4Series
	Random Fig4Series
}

// RunFig4 executes the sweep.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Trials <= 0 || len(cfg.Checkpoints) == 0 {
		return nil, fmt.Errorf("bench: fig4 needs trials and checkpoints")
	}
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: cfg.NumInstances,
		NumFrames:    cfg.NumFrames,
		SkewFraction: cfg.Skew,
		MeanDuration: cfg.MeanDur,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	runSeries := func(method sim.Method, numChunks int) (Fig4Series, error) {
		s := Fig4Series{NumChunks: numChunks}
		trialFound := make([][]float64, len(cfg.Checkpoints))
		for t := 0; t < cfg.Trials; t++ {
			tr, err := sim.Run(method, sim.ChunkSimConfig{
				Instances:   instances,
				NumFrames:   cfg.NumFrames,
				NumChunks:   numChunks,
				Budget:      cfg.Budget,
				Checkpoints: cfg.Checkpoints,
				Seed:        cfg.Seed + uint64(t)*104729 + uint64(numChunks),
			})
			if err != nil {
				return s, err
			}
			for k, f := range tr.Found {
				trialFound[k] = append(trialFound[k], float64(f))
			}
		}
		for k := range cfg.Checkpoints {
			band, err := metrics.NewBand(trialFound[k])
			if err != nil {
				return s, err
			}
			s.Bands = append(s.Bands, band)
			s.Found = append(s.Found, band.Median)
		}
		return s, nil
	}

	res := &Fig4Result{Config: cfg}
	for _, m := range cfg.ChunkCounts {
		series, err := runSeries(sim.MethodExSample, m)
		if err != nil {
			return nil, fmt.Errorf("bench: fig4 chunks=%d: %w", m, err)
		}
		if cfg.WithOptimal {
			chunks, err := video.SplitRange(0, cfg.NumFrames, m)
			if err != nil {
				return nil, err
			}
			pr, err := opt.FromInstances(instances, chunks)
			if err != nil {
				return nil, err
			}
			curve, err := pr.ExpectedCurve(cfg.Checkpoints, nil, true)
			if err != nil {
				return nil, err
			}
			series.Optimal = curve
		}
		res.Series = append(res.Series, series)
	}
	random, err := runSeries(sim.MethodRandom, 1)
	if err != nil {
		return nil, err
	}
	res.Random = random
	return res, nil
}

// Render writes the Figure 4 series table.
func (r *Fig4Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Figure 4 — effect of chunk count (skew %s, mean duration %.0f frames)\n",
		skewLabel(r.Config.Skew), r.Config.MeanDur)
	writef(w, &err, "%d instances, %d frames, %d trials; median distinct found\n\n",
		r.Config.NumInstances, r.Config.NumFrames, r.Config.Trials)
	writef(w, &err, "%12s", "samples")
	for _, s := range r.Series {
		writef(w, &err, " %9dch", s.NumChunks)
		if s.Optimal != nil {
			writef(w, &err, " %11s", "(optimal)")
		}
	}
	writef(w, &err, " %11s\n", "random")
	for k, cp := range r.Config.Checkpoints {
		writef(w, &err, "%12d", cp)
		for _, s := range r.Series {
			writef(w, &err, " %11.0f", s.Found[k])
			if s.Optimal != nil {
				writef(w, &err, " %11.0f", s.Optimal[k])
			}
		}
		writef(w, &err, " %11.0f\n", r.Random.Found[k])
	}
	writef(w, &err, "\n")
	return err
}
