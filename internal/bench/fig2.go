package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/exsample/exsample/internal/sim"
	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/synth"
)

// Fig2Config parameterizes the §III-D belief-validation experiment. The
// paper draws 1000 lognormal p_i (µp=3e-3, σp=8e-3, max 0.15), samples up to
// n = 180000 frames, repeats 10000 times, and compares histograms of the
// true R(n+1) at six observed (n, N1) pairs against Γ(N1+0.1, n+1).
type Fig2Config struct {
	// NumInstances is the p_i population size (paper: 1000).
	NumInstances int
	// MeanP and CVP parameterize the lognormal over p_i.
	MeanP, CVP float64
	// MaxP clips the upper tail (paper max p_i = 0.15).
	MaxP float64
	// Probes are the sample counts n at which beliefs are checked.
	Probes []int64
	// Runs is the number of independent sampling processes.
	Runs int
	// Alpha0 is the belief prior (paper: 0.1; beta uses n+1).
	Alpha0 float64
	// Seed drives the experiment.
	Seed uint64
}

// DefaultFig2 mirrors the paper's setup at reduced run count; probes follow
// the same early/mid/late pattern as the six panels in Figure 2.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		NumInstances: 1000,
		MeanP:        3e-3,
		CVP:          2.7,
		MaxP:         0.15,
		Probes:       []int64{82, 100, 14093, 120911, 172085, 179601},
		Runs:         300,
		Alpha0:       0.1,
		Seed:         2022,
	}
}

// Fig2Row summarizes the belief quality at one (n, N1) pair: the empirical
// distribution of the true R(n+1) across runs that observed exactly that
// pair, against the Gamma belief's point estimate and quantiles.
type Fig2Row struct {
	N          int64
	N1         int64
	Count      int     // runs observing this (n, N1)
	ActualMean float64 // mean true R(n+1)
	ActualP25  float64
	ActualP75  float64
	PointEst   float64 // N1/n (Eq. III.1)
	BeliefMean float64 // (N1+α0)/(n+1)
	BeliefP25  float64
	BeliefP75  float64
	// Coverage95 is the fraction of true R values inside the belief's
	// central 95% interval (the §III-D check reporting ~80% on BDD).
	Coverage95 float64
}

// Fig2Result is the full experiment output.
type Fig2Result struct {
	Config Fig2Config
	Rows   []Fig2Row
}

// RunFig2 executes the experiment: simulate, group samples by (probe n,
// modal N1 values), and score the Gamma belief against the empirical
// distribution of R(n+1).
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	pis, err := synth.Pis(cfg.NumInstances, cfg.MeanP, cfg.CVP, cfg.MaxP, cfg.Seed)
	if err != nil {
		return nil, err
	}
	samples, err := sim.CollectBeliefSamples(pis, cfg.Probes, cfg.Runs, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// Group by probe, then pick the modal N1 at each probe so every row has
	// enough mass to form a histogram (the paper likewise shows pairs that
	// actually occurred).
	byProbe := make(map[int64][]sim.BeliefSample)
	for _, s := range samples {
		byProbe[s.N] = append(byProbe[s.N], s)
	}
	var rows []Fig2Row
	for _, n := range cfg.Probes {
		group := byProbe[n]
		if len(group) == 0 {
			continue
		}
		counts := make(map[int64]int)
		for _, s := range group {
			counts[s.N1]++
		}
		modal, best := int64(0), 0
		for n1, c := range counts {
			if c > best || (c == best && n1 < modal) {
				modal, best = n1, c
			}
		}
		var rs []float64
		for _, s := range group {
			if s.N1 == modal {
				rs = append(rs, s.R)
			}
		}
		row, err := scoreBelief(n, modal, rs, cfg.Alpha0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].N < rows[j].N })
	return &Fig2Result{Config: cfg, Rows: rows}, nil
}

func scoreBelief(n, n1 int64, rs []float64, alpha0 float64) (Fig2Row, error) {
	row := Fig2Row{N: n, N1: n1, Count: len(rs)}
	var err error
	if row.ActualMean, err = stats.Mean(rs); err != nil {
		return row, err
	}
	if row.ActualP25, err = stats.Percentile(rs, 0.25); err != nil {
		return row, err
	}
	if row.ActualP75, err = stats.Percentile(rs, 0.75); err != nil {
		return row, err
	}
	row.PointEst = float64(n1) / float64(n)
	alpha := float64(n1) + alpha0
	beta := float64(n) + 1
	row.BeliefMean = alpha / beta
	if row.BeliefP25, err = stats.GammaQuantile(0.25, alpha, beta); err != nil {
		return row, err
	}
	if row.BeliefP75, err = stats.GammaQuantile(0.75, alpha, beta); err != nil {
		return row, err
	}
	lo, err := stats.GammaQuantile(0.025, alpha, beta)
	if err != nil {
		return row, err
	}
	hi, err := stats.GammaQuantile(0.975, alpha, beta)
	if err != nil {
		return row, err
	}
	inside := 0
	for _, r := range rs {
		if r >= lo && r <= hi {
			inside++
		}
	}
	row.Coverage95 = float64(inside) / float64(len(rs))
	return row, nil
}

// Render writes the Figure 2 comparison table.
func (r *Fig2Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Figure 2 — belief validation: true R(n+1) vs Gamma(N1+%.1f, n+1)\n", r.Config.Alpha0)
	writef(w, &err, "%d instances, %d runs, lognormal p (mean %.0e)\n\n",
		r.Config.NumInstances, r.Config.Runs, r.Config.MeanP)
	writef(w, &err, "%10s %6s %6s | %12s %12s | %12s %12s %12s | %9s\n",
		"n", "N1", "runs", "actual meanR", "belief mean", "actual 25-75", "belief p25", "belief p75", "cover95")
	for _, row := range r.Rows {
		writef(w, &err, "%10d %6d %6d | %12.3e %12.3e | %5.1e/%5.1e %12.3e %12.3e | %8.0f%%\n",
			row.N, row.N1, row.Count,
			row.ActualMean, row.BeliefMean,
			row.ActualP25, row.ActualP75, row.BeliefP25, row.BeliefP75,
			row.Coverage95*100)
	}
	if err == nil {
		_, err = fmt.Fprintln(w)
	}
	return err
}
