package bench

import (
	"fmt"
	"io"

	"github.com/exsample/exsample/internal/metrics"
	"github.com/exsample/exsample/internal/opt"
	"github.com/exsample/exsample/internal/sim"
	"github.com/exsample/exsample/internal/stats"
	"github.com/exsample/exsample/internal/synth"
	"github.com/exsample/exsample/internal/video"
)

// Fig3Config parameterizes the §IV-B simulation grid. The paper fixes
// N=2000 instances over 16M frames, 128 chunks, 21 trials, skew columns
// {none, 1/4, 1/32, 1/256} and mean-duration rows {14, 100, 700, 4900},
// and labels the savings in samples to reach 10, 100 and 1000 results.
type Fig3Config struct {
	NumInstances int
	NumFrames    int64
	NumChunks    int
	Trials       int
	Budget       int64
	Skews        []float64 // 0 = none
	MeanDurs     []float64
	Targets      []int64 // savings labels (paper: 10, 100, 1000)
	// OptCheckpoints computes the optimal-allocation (Eq. IV.1) expected-N
	// curve at this many log-spaced points (0 disables, saving time).
	OptCheckpoints int
	Seed           uint64
}

// DefaultFig3 returns the paper's grid at a scale that runs in seconds:
// frames and budget shrink together so densities (and hence savings shapes)
// are preserved.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		NumInstances:   2000,
		NumFrames:      2_000_000,
		NumChunks:      128,
		Trials:         7,
		Budget:         20_000,
		Skews:          []float64{0, 0.25, 1.0 / 32, 1.0 / 256},
		MeanDurs:       []float64{14, 100, 700, 4900},
		Targets:        []int64{10, 100, 1000},
		OptCheckpoints: 0,
		Seed:           31,
	}
}

// PaperFig3 is the full-size grid (16M frames, 21 trials) — hours of CPU.
func PaperFig3() Fig3Config {
	cfg := DefaultFig3()
	cfg.NumFrames = 16_000_000
	cfg.Trials = 21
	cfg.Budget = 100_000
	return cfg
}

// Fig3Cell is one (skew, duration) grid cell.
type Fig3Cell struct {
	Skew    float64
	MeanDur float64
	// SavingsAt[k] is median(random samples)/median(exsample samples) to
	// reach Targets[k]; 0 when a target was unreachable for either method.
	SavingsAt []float64
	// ExSampleFound/RandomFound are median distinct counts at Budget.
	ExSampleFound, RandomFound float64
	// ExSampleBand/RandomBand are the 25–75% bands at Budget.
	ExSampleBand, RandomBand metrics.Band
	// OptimalCurve holds Eq. IV.1 expected-N at OptCheckpoints sample
	// counts (nil when disabled).
	OptimalNs    []int64
	OptimalCurve []float64
}

// Fig3Result is the full grid.
type Fig3Result struct {
	Config Fig3Config
	Cells  []Fig3Cell
}

// RunFig3 executes the grid.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("bench: fig3 needs trials > 0")
	}
	res := &Fig3Result{Config: cfg}
	cellSeed := cfg.Seed
	for _, dur := range cfg.MeanDurs {
		for _, skew := range cfg.Skews {
			cellSeed += 101
			cell, err := runFig3Cell(cfg, skew, dur, cellSeed)
			if err != nil {
				return nil, fmt.Errorf("bench: fig3 cell skew=%v dur=%v: %w", skew, dur, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func runFig3Cell(cfg Fig3Config, skew, dur float64, seed uint64) (Fig3Cell, error) {
	cell := Fig3Cell{Skew: skew, MeanDur: dur}
	instances, err := synth.Generate(synth.GridSpec{
		NumInstances: cfg.NumInstances,
		NumFrames:    cfg.NumFrames,
		SkewFraction: skew,
		MeanDuration: dur,
		Seed:         seed,
	})
	if err != nil {
		return cell, err
	}

	type trialOut struct {
		toTarget map[int64]int64 // samples to reach each target (0 = missed)
		found    float64
	}
	runMethod := func(method sim.Method) ([]trialOut, error) {
		outs := make([]trialOut, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			simCfg := sim.ChunkSimConfig{
				Instances: instances,
				NumFrames: cfg.NumFrames,
				NumChunks: cfg.NumChunks,
				Budget:    cfg.Budget,
				Seed:      seed + uint64(t)*7919,
			}
			tr, err := sim.Run(method, simCfg)
			if err != nil {
				return nil, err
			}
			out := trialOut{toTarget: make(map[int64]int64), found: float64(tr.FoundAtEnd)}
			for _, target := range cfg.Targets {
				n, ok, err := sim.SamplesToReach(method, simCfg, target)
				if err != nil {
					return nil, err
				}
				if ok {
					out.toTarget[target] = n
				}
			}
			outs[t] = out
		}
		return outs, nil
	}

	exOuts, err := runMethod(sim.MethodExSample)
	if err != nil {
		return cell, err
	}
	rndOuts, err := runMethod(sim.MethodRandom)
	if err != nil {
		return cell, err
	}

	// Medians of found-at-budget plus bands.
	collect := func(outs []trialOut) ([]float64, error) {
		vals := make([]float64, len(outs))
		for i, o := range outs {
			vals[i] = o.found
		}
		return vals, nil
	}
	exFound, _ := collect(exOuts)
	rndFound, _ := collect(rndOuts)
	if cell.ExSampleBand, err = metrics.NewBand(exFound); err != nil {
		return cell, err
	}
	if cell.RandomBand, err = metrics.NewBand(rndFound); err != nil {
		return cell, err
	}
	cell.ExSampleFound = cell.ExSampleBand.Median
	cell.RandomFound = cell.RandomBand.Median

	// Savings per target from median samples-to-target across trials that
	// reached it (both methods must have a majority of reaching trials).
	cell.SavingsAt = make([]float64, len(cfg.Targets))
	for k, target := range cfg.Targets {
		med := func(outs []trialOut) (float64, bool) {
			var vals []float64
			for _, o := range outs {
				if n, ok := o.toTarget[target]; ok {
					vals = append(vals, float64(n))
				}
			}
			if len(vals)*2 <= len(outs) {
				return 0, false
			}
			m, err := stats.Median(vals)
			return m, err == nil
		}
		ex, okEx := med(exOuts)
		rnd, okRnd := med(rndOuts)
		if okEx && okRnd && ex > 0 {
			cell.SavingsAt[k] = rnd / ex
		}
	}

	// Optimal-allocation curve (Eq. IV.1).
	if cfg.OptCheckpoints > 0 {
		chunks, err := video.SplitRange(0, cfg.NumFrames, cfg.NumChunks)
		if err != nil {
			return cell, err
		}
		pr, err := opt.FromInstances(instances, chunks)
		if err != nil {
			return cell, err
		}
		ns, err := LogCheckpoints(10, cfg.Budget, maxInt(1, cfg.OptCheckpoints/4))
		if err != nil {
			return cell, err
		}
		if len(ns) > cfg.OptCheckpoints {
			ns = thin(ns, cfg.OptCheckpoints)
		}
		curve, err := pr.ExpectedCurve(ns, nil, true)
		if err != nil {
			return cell, err
		}
		cell.OptimalNs = ns
		cell.OptimalCurve = curve
	}
	return cell, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func thin(xs []int64, k int) []int64 {
	if len(xs) <= k {
		return xs
	}
	out := make([]int64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, xs[i*(len(xs)-1)/(k-1)])
	}
	return out
}

// Render writes the Figure 3 grid as savings tables.
func (r *Fig3Result) Render(w io.Writer) error {
	var err error
	writef(w, &err, "Figure 3 — simulated savings of ExSample over random\n")
	writef(w, &err, "%d instances, %d frames, %d chunks, %d trials, budget %d samples\n\n",
		r.Config.NumInstances, r.Config.NumFrames, r.Config.NumChunks, r.Config.Trials, r.Config.Budget)
	for ti, target := range r.Config.Targets {
		writef(w, &err, "savings in samples to reach %d results (rows: mean duration; cols: skew)\n", target)
		writef(w, &err, "%10s", "dur\\skew")
		for _, s := range r.Config.Skews {
			writef(w, &err, " %10s", skewLabel(s))
		}
		writef(w, &err, "\n")
		for _, dur := range r.Config.MeanDurs {
			writef(w, &err, "%10.0f", dur)
			for _, s := range r.Config.Skews {
				cell := r.cell(s, dur)
				if cell == nil {
					writef(w, &err, " %10s", "-")
					continue
				}
				writef(w, &err, " %10s", fmtRatio(cell.SavingsAt[ti]))
			}
			writef(w, &err, "\n")
		}
		writef(w, &err, "\n")
	}
	writef(w, &err, "median distinct found at budget (exsample / random)\n")
	for _, dur := range r.Config.MeanDurs {
		writef(w, &err, "%10.0f", dur)
		for _, s := range r.Config.Skews {
			cell := r.cell(s, dur)
			writef(w, &err, " %6.0f/%-6.0f", cell.ExSampleFound, cell.RandomFound)
		}
		writef(w, &err, "\n")
	}
	writef(w, &err, "\n")
	return err
}

func (r *Fig3Result) cell(skew, dur float64) *Fig3Cell {
	for i := range r.Cells {
		if r.Cells[i].Skew == skew && r.Cells[i].MeanDur == dur {
			return &r.Cells[i]
		}
	}
	return nil
}

func skewLabel(s float64) string {
	if s == 0 {
		return "none"
	}
	return fmt.Sprintf("1/%.0f", 1/s)
}
