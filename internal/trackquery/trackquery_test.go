package trackquery

import (
	"reflect"
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/sorttrack"
	"github.com/exsample/exsample/internal/video"
)

// pathAlong builds a path of 20x20 boxes whose centers move from (x0,y0)
// stepping (dx,dy) per frame.
func pathAlong(n int, x0, y0, dx, dy float64) []sorttrack.PathPoint {
	out := make([]sorttrack.PathPoint, n)
	for i := 0; i < n; i++ {
		cx := x0 + dx*float64(i)
		cy := y0 + dy*float64(i)
		out[i] = sorttrack.PathPoint{Frame: int64(i), Box: geom.Rect(cx-10, cy-10, 20, 20)}
	}
	return out
}

func mustCompile(t *testing.T, p Predicate) *Evaluator {
	t.Helper()
	e, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return e
}

func TestEvaluatorClauses(t *testing.T) {
	// 10 frames rightward from (50, 100) at 8 px/frame: centers 50..122.
	right := pathAlong(10, 50, 100, 8, 0)
	square := func(x1, y1, x2, y2 float64) geom.Polygon {
		return geom.BoxPolygon(geom.Box{X1: x1, Y1: y1, X2: x2, Y2: y2})
	}
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"empty predicate matches", Predicate{}, true},
		{"min duration ok", Predicate{MinDuration: 10}, true},
		{"min duration too long", Predicate{MinDuration: 11}, false},
		{"max duration ok", Predicate{MaxDuration: 10}, true},
		{"max duration exceeded", Predicate{MaxDuration: 9}, false},
		{"from contains start", Predicate{From: square(40, 90, 60, 110)}, true},
		{"from misses start", Predicate{From: square(200, 90, 220, 110)}, false},
		{"to contains end", Predicate{To: square(110, 90, 130, 110)}, true},
		{"to misses end", Predicate{To: square(40, 90, 60, 110)}, false},
		{"visits mid-path", Predicate{Visits: square(80, 95, 90, 105)}, true},
		{"visits nowhere", Predicate{Visits: square(80, 300, 90, 310)}, false},
		{"crosses perpendicular line", Predicate{Crosses: &geom.Segment{A: geom.Point{X: 90, Y: 0}, B: geom.Point{X: 90, Y: 200}}}, true},
		{"crosses line elsewhere", Predicate{Crosses: &geom.Segment{A: geom.Point{X: 300, Y: 0}, B: geom.Point{X: 300, Y: 200}}}, false},
		{"speed in range", Predicate{MinSpeed: 7, MaxSpeed: 9}, true},
		{"speed too slow", Predicate{MinSpeed: 9}, false},
		{"speed too fast", Predicate{MaxSpeed: 7}, false},
		{"direction rightward", Predicate{HasDirection: true, DirMinDeg: 350, DirMaxDeg: 10}, true},
		{"direction wrong way", Predicate{HasDirection: true, DirMinDeg: 170, DirMaxDeg: 190}, false},
		{"conjunction all pass", Predicate{MinDuration: 5, MinSpeed: 7, HasDirection: true, DirMinDeg: 315, DirMaxDeg: 45}, true},
		{"conjunction one fails", Predicate{MinDuration: 5, MinSpeed: 20, HasDirection: true, DirMinDeg: 315, DirMaxDeg: 45}, false},
	}
	for _, c := range cases {
		if got := mustCompile(t, c.p).Match(right); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
	if mustCompile(t, Predicate{}).Match(nil) {
		t.Error("empty path matched")
	}
	// A stationary object has no heading, so any direction clause fails.
	still := pathAlong(5, 50, 50, 0, 0)
	if mustCompile(t, Predicate{HasDirection: true, DirMinDeg: 0, DirMaxDeg: 360}).Match(still) {
		t.Error("stationary path matched a direction clause")
	}
	if s := AvgSpeed(still); s != 0 {
		t.Errorf("stationary speed = %v", s)
	}
}

func TestHeadingQuadrants(t *testing.T) {
	cases := []struct {
		dx, dy float64
		want   float64
	}{{1, 0, 0}, {0, 1, 90}, {-1, 0, 180}, {0, -1, 270}, {1, 1, 45}}
	for _, c := range cases {
		h, ok := Heading(pathAlong(2, 0, 0, c.dx, c.dy))
		if !ok || h != c.want {
			t.Errorf("Heading(d=%v,%v) = %v ok=%v, want %v", c.dx, c.dy, h, ok, c.want)
		}
	}
}

func TestCompileRejectsInconsistent(t *testing.T) {
	bad := []Predicate{
		{From: geom.Polygon{{X: 0, Y: 0}, {X: 1, Y: 1}}},                 // 2 vertices
		{Visits: geom.Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}}, // zero area
		{Crosses: &geom.Segment{A: geom.Point{X: 5, Y: 5}, B: geom.Point{X: 5, Y: 5}}},
		{MinDuration: 10, MaxDuration: 5},
		{MinSpeed: 10, MaxSpeed: 5},
	}
	for i, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("case %d: degenerate predicate compiled", i)
		}
	}
}

// drive runs a plan to completion against a synthetic hit oracle, pulling
// batch frames per round to mimic engine batching, and returns the ready
// intervals in completion order.
func drive(t *testing.T, p *Plan, batch int, hitAt func(int64) bool) []Interval {
	t.Helper()
	var ready []Interval
	for rounds := 0; rounds < 100000; rounds++ {
		type iss struct {
			frame int64
			chunk int
		}
		var issued []iss
		for len(issued) < batch {
			f, c, ok := p.Next()
			if !ok {
				break
			}
			issued = append(issued, iss{f, c})
		}
		if len(issued) == 0 {
			if p.Done() {
				ready = append(ready, p.TakeReady()...)
				return ready
			}
			t.Fatal("plan stalled: nothing issued but not done")
		}
		for _, is := range issued {
			if err := p.Observe(is.frame, is.chunk, hitAt(is.frame)); err != nil {
				t.Fatalf("Observe(%d): %v", is.frame, err)
			}
		}
		ready = append(ready, p.TakeReady()...)
	}
	t.Fatal("plan did not terminate")
	return nil
}

func planCfg(numFrames, stride, pad int64) Config {
	return Config{
		NumFrames: numFrames,
		Chunks:    []video.Chunk{{ID: 0, Start: 0, End: numFrames}},
		Stride:    stride,
		Pad:       pad,
		Seed:      42,
	}
}

func TestPlanLocalizesAndDensifies(t *testing.T) {
	// Object visible on [130, 170] of 400 frames; stride 10, pad 10.
	hit := func(f int64) bool { return f >= 130 && f <= 170 }
	p, err := NewPlan(planCfg(400, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	ready := drive(t, p, 4, hit)
	want := []Interval{{Start: 120, End: 180}}
	if !reflect.DeepEqual(ready, want) {
		t.Fatalf("ready = %+v, want %+v", ready, want)
	}
	ci, ri, ch, rh := p.Stats()
	if ci != 40 {
		t.Errorf("coarse issued %d, want 40 (full grid)", ci)
	}
	// Interval has 61 frames, 7 of them already visited on the grid.
	if ri != 61-7 {
		t.Errorf("refine issued %d, want %d", ri, 61-7)
	}
	if ch != 5 { // grid points 130, 140, 150, 160, 170
		t.Errorf("coarse hits %d, want 5", ch)
	}
	if rh != 41-5 {
		t.Errorf("refine hits %d, want %d", rh, 41-5)
	}
	if total := ci + ri; total >= 400/2 {
		t.Errorf("processed %d of 400 frames — no acceleration", total)
	}
}

func TestPlanIntervalsIndependentOfSeedAndBatch(t *testing.T) {
	hit := func(f int64) bool {
		return (f >= 50 && f <= 80) || (f >= 300 && f <= 310) || (f >= 690 && f <= 699)
	}
	var base []Interval
	for i, cfg := range []struct {
		seed  uint64
		batch int
	}{{1, 1}, {1, 17}, {99, 4}, {7, 64}} {
		c := planCfg(800, 8, 8)
		c.Seed = cfg.seed
		p, err := NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		got := drive(t, p, cfg.batch, hit)
		if i == 0 {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("seed=%d batch=%d: intervals %+v != base %+v", cfg.seed, cfg.batch, got, base)
		}
	}
	if len(base) != 3 {
		t.Fatalf("expected 3 disjoint intervals, got %+v", base)
	}
}

func TestPlanCoarseOnly(t *testing.T) {
	hit := func(f int64) bool { return f >= 100 && f <= 140 }
	cfg := planCfg(400, 10, 10)
	cfg.CoarseOnly = true
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ready := drive(t, p, 8, hit)
	want := []Interval{{Start: 90, End: 150}}
	if !reflect.DeepEqual(ready, want) {
		t.Fatalf("ready = %+v, want %+v", ready, want)
	}
	ci, ri, _, _ := p.Stats()
	if ri != 0 {
		t.Errorf("coarse-only plan issued %d refine frames", ri)
	}
	if ci != 40 {
		t.Errorf("coarse issued %d, want 40", ci)
	}
}

func TestPlanStrideOneIsDense(t *testing.T) {
	// Stride 1: the grid is every frame, so refine has nothing to add and
	// the plan completes with zero refine issues.
	hit := func(f int64) bool { return f == 25 }
	p, err := NewPlan(planCfg(60, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	ready := drive(t, p, 16, hit)
	want := []Interval{{Start: 22, End: 28}}
	if !reflect.DeepEqual(ready, want) {
		t.Fatalf("ready = %+v, want %+v", ready, want)
	}
	ci, ri, _, _ := p.Stats()
	if ci != 60 || ri != 0 {
		t.Errorf("issued coarse=%d refine=%d, want 60, 0", ci, ri)
	}
}

func TestPlanNoHitsFinishesEmpty(t *testing.T) {
	p, err := NewPlan(planCfg(200, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	ready := drive(t, p, 8, func(int64) bool { return false })
	if len(ready) != 0 {
		t.Fatalf("ready = %+v, want none", ready)
	}
	if !p.Done() {
		t.Error("plan not done")
	}
	if v := p.MarginalValue(); v != 0 {
		t.Errorf("done marginal value = %v", v)
	}
}

func TestPlanClipsToChunkCoverage(t *testing.T) {
	// Coverage has a hole [40, 60); a hit at 38 with a wide pad must split
	// around it and never issue frames inside the hole.
	cfg := Config{
		NumFrames: 100,
		Chunks: []video.Chunk{
			{ID: 0, Start: 0, End: 40},
			{ID: 1, Start: 60, End: 100},
		},
		Stride: 4,
		Pad:    30,
		Seed:   3,
	}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	issued := map[int64]bool{}
	hit := func(f int64) bool {
		if f >= 40 && f < 60 {
			t.Fatalf("issued frame %d inside the coverage hole", f)
		}
		issued[f] = true
		return f == 36
	}
	ready := drive(t, p, 8, hit)
	want := []Interval{{Start: 6, End: 39}, {Start: 60, End: 66}}
	if !reflect.DeepEqual(ready, want) {
		t.Fatalf("ready = %+v, want %+v", ready, want)
	}
}

func TestPlanWaitsForOutstandingCoarse(t *testing.T) {
	p, err := NewPlan(planCfg(40, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Issue the whole grid (4 frames) without observing.
	var frames []int64
	var chunks []int
	for {
		f, c, ok := p.Next()
		if !ok {
			break
		}
		frames = append(frames, f)
		chunks = append(chunks, c)
	}
	if len(frames) != 4 {
		t.Fatalf("issued %d coarse frames, want 4", len(frames))
	}
	if p.Phase() != PhaseCoarse {
		t.Fatalf("phase = %v with observes outstanding", p.Phase())
	}
	for i, f := range frames {
		if _, _, ok := p.Next(); ok {
			t.Fatal("Next issued with observes outstanding")
		}
		if err := p.Observe(f, chunks[i], f == 20); err != nil {
			t.Fatal(err)
		}
	}
	// All observed: next call transitions to refine.
	f, c, ok := p.Next()
	if !ok || c != -1 {
		t.Fatalf("Next after transition = (%d, %d, %v)", f, c, ok)
	}
	if p.Phase() != PhaseRefine {
		t.Fatalf("phase = %v, want refine", p.Phase())
	}
}

func TestPlanObserveErrors(t *testing.T) {
	p, err := NewPlan(planCfg(40, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	f, c, ok := p.Next()
	if !ok {
		t.Fatal("no first pick")
	}
	if err := p.Observe(f, c, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(f, c, false); err == nil {
		t.Error("double observe accepted")
	}
	if err := p.Observe(999, -1, false); err == nil {
		t.Error("refine observe in coarse phase accepted")
	}
}

func TestPlanMarginalValueDecays(t *testing.T) {
	hit := func(f int64) bool { return f >= 100 && f <= 120 }
	p, err := NewPlan(planCfg(400, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.MarginalValue(); v <= 0 {
		t.Errorf("initial marginal value %v, want > 0 (prior optimism)", v)
	}
	drive(t, p, 4, hit)
	if v := p.MarginalValue(); v != 0 {
		t.Errorf("final marginal value %v, want 0", v)
	}
}

func TestNewPlanRejectsBadConfig(t *testing.T) {
	good := planCfg(100, 10, 10)
	for name, mutate := range map[string]func(*Config){
		"zero frames":    func(c *Config) { c.NumFrames = 0 },
		"zero stride":    func(c *Config) { c.Stride = 0 },
		"negative pad":   func(c *Config) { c.Pad = -1 },
		"no chunks":      func(c *Config) { c.Chunks = nil },
		"chunk past end": func(c *Config) { c.Chunks = []video.Chunk{{ID: 0, Start: 0, End: 500}} },
	} {
		c := good
		mutate(&c)
		if _, err := NewPlan(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
