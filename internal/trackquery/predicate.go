// Package trackquery implements the MIRIS-style accelerate/refine loop
// behind track-predicate queries (SNIPPETS.md; Bastani et al., SIGMOD'20):
// phase 1 samples the repository at a coarse stride — ordered by the same
// Thompson sampler that drives distinct-object queries, so detector frames
// flow to the chunks where the class is actually present — to localize
// candidate intervals; phase 2 densifies only those intervals, associates
// the dense detections into tracks (internal/sorttrack), smooths them
// (internal/kalman) and evaluates a compiled trajectory predicate.
//
// The package is deliberately engine-agnostic: Plan is a pure frame-picking
// state machine (the track-query analogue of core.Sampler) and Evaluator is
// a pure function of a smoothed path, so the root package can drive them
// from the sequential TrackSearch loop and the concurrent engine scheduler
// with byte-identical results.
package trackquery

import (
	"fmt"
	"math"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/sorttrack"
)

// Predicate is the compiled-facing trajectory predicate: every clause is
// optional (zero value = unconstrained) and clauses conjoin. The public
// TrackPredicate in the root package validates user input and lowers to
// this struct.
type Predicate struct {
	// Class restricts which detections participate at all (enforced
	// upstream by the per-class detector; kept here for report labeling).
	Class string
	// From and To constrain the smoothed track's first and last observed
	// center point; Visits requires some observed center inside.
	From, To, Visits geom.Polygon
	// Crosses requires the smoothed center path to intersect the segment.
	Crosses *geom.Segment
	// MinDuration/MaxDuration bound the observed span in frames
	// (inclusive; 0 = unbounded).
	MinDuration, MaxDuration int64
	// MinSpeed/MaxSpeed bound the average speed in pixels per frame over
	// the smoothed path (0 MaxSpeed = unbounded).
	MinSpeed, MaxSpeed float64
	// DirMinDeg/DirMaxDeg (active when HasDirection) bound the net-motion
	// heading, degrees in [0, 360) measured from +x toward +y (screen
	// coordinates: 0 = rightward, 90 = downward). The arc may wrap through
	// 0 (e.g. min 315, max 45 accepts "roughly rightward").
	DirMinDeg, DirMaxDeg float64
	HasDirection         bool
}

// Evaluator is a compiled Predicate. Compile precomputes nothing heavy
// today — the value of the type is the checked construction and a stable
// seam for future acceleration (polygon bounding boxes, clause reordering).
type Evaluator struct {
	p          Predicate
	fromB, toB geom.Box // polygon bounds, cheap reject
	visitsB    geom.Box
}

// Compile validates the clauses' internal consistency and returns the
// evaluator. User-facing field validation (degenerate regions, inverted
// bounds) happens in the root package before lowering; Compile re-checks
// the invariants it relies on so a bad internal caller fails loudly.
func Compile(p Predicate) (*Evaluator, error) {
	for _, r := range []struct {
		name string
		poly geom.Polygon
	}{{"From", p.From}, {"To", p.To}, {"Visits", p.Visits}} {
		if r.poly != nil && !r.poly.Valid() {
			return nil, fmt.Errorf("trackquery: %s region is degenerate", r.name)
		}
	}
	if p.Crosses != nil && !p.Crosses.Valid() {
		return nil, fmt.Errorf("trackquery: Crosses segment is degenerate")
	}
	if p.MaxDuration > 0 && p.MinDuration > p.MaxDuration {
		return nil, fmt.Errorf("trackquery: MinDuration %d > MaxDuration %d", p.MinDuration, p.MaxDuration)
	}
	if p.MaxSpeed > 0 && p.MinSpeed > p.MaxSpeed {
		return nil, fmt.Errorf("trackquery: MinSpeed %v > MaxSpeed %v", p.MinSpeed, p.MaxSpeed)
	}
	e := &Evaluator{p: p}
	if p.From != nil {
		e.fromB = p.From.Bounds()
	}
	if p.To != nil {
		e.toB = p.To.Bounds()
	}
	if p.Visits != nil {
		e.visitsB = p.Visits.Bounds()
	}
	return e, nil
}

// center returns the path point's box center.
func center(p sorttrack.PathPoint) geom.Point {
	x, y := p.Box.Center()
	return geom.Point{X: x, Y: y}
}

// Match evaluates the predicate over one smoothed track path (ascending
// frames). An empty path never matches.
func (e *Evaluator) Match(path []sorttrack.PathPoint) bool {
	if len(path) == 0 {
		return false
	}
	p := e.p
	dur := path[len(path)-1].Frame - path[0].Frame + 1
	if dur < p.MinDuration {
		return false
	}
	if p.MaxDuration > 0 && dur > p.MaxDuration {
		return false
	}
	if p.From != nil {
		c := center(path[0])
		if !p.From.Contains(c.X, c.Y) {
			return false
		}
	}
	if p.To != nil {
		c := center(path[len(path)-1])
		if !p.To.Contains(c.X, c.Y) {
			return false
		}
	}
	if p.Visits != nil {
		found := false
		for _, pt := range path {
			c := center(pt)
			if p.Visits.Contains(c.X, c.Y) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if p.Crosses != nil {
		crossed := false
		for i := 1; i < len(path); i++ {
			seg := geom.Segment{A: center(path[i-1]), B: center(path[i])}
			if p.Crosses.Intersects(seg) {
				crossed = true
				break
			}
		}
		if !crossed {
			return false
		}
	}
	if p.MinSpeed > 0 || p.MaxSpeed > 0 {
		speed := AvgSpeed(path)
		if speed < p.MinSpeed {
			return false
		}
		if p.MaxSpeed > 0 && speed > p.MaxSpeed {
			return false
		}
	}
	if p.HasDirection {
		heading, ok := Heading(path)
		if !ok || !inArc(heading, p.DirMinDeg, p.DirMaxDeg) {
			return false
		}
	}
	return true
}

// AvgSpeed returns the path's mean speed in pixels per frame: total center
// travel divided by the observed frame span. Single-point paths have speed
// 0.
func AvgSpeed(path []sorttrack.PathPoint) float64 {
	if len(path) < 2 {
		return 0
	}
	span := path[len(path)-1].Frame - path[0].Frame
	if span <= 0 {
		return 0
	}
	var dist float64
	for i := 1; i < len(path); i++ {
		a, b := center(path[i-1]), center(path[i])
		dist += math.Hypot(b.X-a.X, b.Y-a.Y)
	}
	return dist / float64(span)
}

// Heading returns the net-motion heading in degrees in [0, 360), measured
// from +x toward +y. ok is false when the path has no net displacement (a
// stationary object has no heading).
func Heading(path []sorttrack.PathPoint) (float64, bool) {
	if len(path) < 2 {
		return 0, false
	}
	a, b := center(path[0]), center(path[len(path)-1])
	dx, dy := b.X-a.X, b.Y-a.Y
	if dx == 0 && dy == 0 {
		return 0, false
	}
	deg := math.Atan2(dy, dx) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg, true
}

// inArc reports whether heading h lies on the arc from min to max (degrees,
// wrapping through 0 when min > max).
func inArc(h, min, max float64) bool {
	if min <= max {
		return h >= min && h <= max
	}
	return h >= min || h <= max
}
