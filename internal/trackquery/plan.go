package trackquery

import (
	"fmt"
	"sort"

	"github.com/exsample/exsample/internal/core"
	"github.com/exsample/exsample/internal/video"
)

// Phase identifies where a Plan is in its accelerate/refine lifecycle.
type Phase int

const (
	// PhaseCoarse: sampling the stride grid, ordered by the chunk sampler.
	PhaseCoarse Phase = iota
	// PhaseRefine: densifying the candidate intervals.
	PhaseRefine
	// PhaseDone: every interval fully observed.
	PhaseDone
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseCoarse:
		return "coarse"
	case PhaseRefine:
		return "refine"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Interval is an inclusive candidate frame range to densify and track.
type Interval struct {
	Start, End int64
}

// Len returns the interval's frame count.
func (iv Interval) Len() int64 { return iv.End - iv.Start + 1 }

// Config parameterizes a Plan.
type Config struct {
	// NumFrames is the source's total frame count.
	NumFrames int64
	// Chunks are the source chunks eligible for sampling (real-frame
	// space). For sharded sources this is the active subset frozen at
	// submit time; candidate intervals are clipped to their coverage, so
	// refine never reads a frame the snapshot says is unreachable.
	Chunks []video.Chunk
	// Stride is the coarse-grid spacing: phase 1 visits frames k*Stride.
	Stride int64
	// Pad widens each coarse hit h into the candidate interval
	// [h-Pad, h+Pad] before merging; it must cover the stride gap (the
	// root package defaults it to Stride) or objects whose presence spans
	// a grid point can be truncated.
	Pad int64
	// Seed drives the coarse sampler. The final result set is independent
	// of it — coarse runs to full grid coverage, so ordering affects only
	// anytime behavior — but it is part of the determinism contract for
	// intermediate stats.
	Seed uint64
	// CoarseOnly skips densification: intervals become ready as soon as
	// the grid completes, and tracking runs over the stride-spaced
	// detections alone. Cheap, lower fidelity; the bench suite's
	// track_query_coarse row measures exactly this mode.
	CoarseOnly bool
	// Alpha0/Beta0 are the sampler prior (0 = paper defaults).
	Alpha0, Beta0 float64
}

// Plan is the track query's frame-picking state machine — the analogue of
// core.Sampler for the accelerate/refine loop. It is not goroutine-safe;
// the engine drives it from the scheduler goroutine only.
//
// Phase 1 issues the coarse grid in sampler order; Observe feeds per-frame
// hit/miss back into the chunk beliefs. When the grid is exhausted the plan
// merges padded hit neighborhoods into disjoint intervals and phase 2
// issues each interval's unobserved frames in ascending order. An interval
// becomes ready — retrievable via TakeReady — once every frame in it has
// been observed; because the refine queue is ascending and applies happen
// in issue order, intervals complete in interval order, which is what makes
// downstream track IDs deterministic across batch sizes.
type Plan struct {
	cfg     Config
	sampler *core.Sampler

	phase         Phase
	pendingCoarse int

	applied map[int64]bool // frames observed (coarse + refine)
	hits    []int64        // coarse frames with ≥1 detection

	intervals    []Interval
	missing      []int // per-interval unobserved frame count
	totalMissing int
	refineQueue  []int64
	refineIdx    int
	ready        []Interval

	coarseIssued, refineIssued int64
	coarseHits, refineHits     int64
}

// NewPlan validates the config and builds the coarse-phase sampler. The
// coarse grid lives in "coarse index" space: index k stands for frame
// k*Stride, and each source chunk maps to the index range whose frames it
// contains, so the chunk beliefs line up one-to-one with the source's
// sampling arms.
func NewPlan(cfg Config) (*Plan, error) {
	if cfg.NumFrames <= 0 {
		return nil, fmt.Errorf("trackquery: NumFrames %d <= 0", cfg.NumFrames)
	}
	if cfg.Stride < 1 {
		return nil, fmt.Errorf("trackquery: Stride %d < 1", cfg.Stride)
	}
	if cfg.Pad < 0 {
		return nil, fmt.Errorf("trackquery: Pad %d < 0", cfg.Pad)
	}
	if len(cfg.Chunks) == 0 {
		return nil, fmt.Errorf("trackquery: no chunks")
	}
	var coarse []video.Chunk
	for _, c := range cfg.Chunks {
		if c.Start < 0 || c.End > cfg.NumFrames || c.Len() <= 0 {
			return nil, fmt.Errorf("trackquery: chunk %d range [%d, %d) invalid for %d frames", c.ID, c.Start, c.End, cfg.NumFrames)
		}
		kLo := (c.Start + cfg.Stride - 1) / cfg.Stride
		kHi := (c.End + cfg.Stride - 1) / cfg.Stride
		if kHi <= kLo {
			continue
		}
		coarse = append(coarse, video.Chunk{ID: len(coarse), Start: kLo, End: kHi})
	}
	if len(coarse) == 0 {
		return nil, fmt.Errorf("trackquery: stride %d places no grid point inside any chunk", cfg.Stride)
	}
	s, err := core.New(coarse, core.Config{
		Alpha0: cfg.Alpha0,
		Beta0:  cfg.Beta0,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{
		cfg:     cfg,
		sampler: s,
		applied: make(map[int64]bool),
	}, nil
}

// Next returns the next frame to detect. chunk is the coarse sampler arm
// during phase 1 (echo it back to Observe) and -1 during refine. ok is
// false when nothing can be issued right now — either the plan is done, or
// phase 1 has issued its whole grid and is waiting on outstanding observes
// before it can build intervals.
func (p *Plan) Next() (frame int64, chunk int, ok bool) {
	if p.phase == PhaseCoarse {
		pick, ok := p.sampler.Next()
		if ok {
			p.pendingCoarse++
			p.coarseIssued++
			return pick.Frame * p.cfg.Stride, pick.Chunk, true
		}
		if p.pendingCoarse > 0 {
			return 0, 0, false // grid issued; intervals wait on observes
		}
		p.transition()
	}
	if p.phase == PhaseRefine && p.refineIdx < len(p.refineQueue) {
		f := p.refineQueue[p.refineIdx]
		p.refineIdx++
		p.refineIssued++
		return f, -1, true
	}
	return 0, 0, false
}

// Observe feeds back one detection result: whether the frame contained any
// detection of the query class. chunk must be the value Next returned with
// the frame. Frames must be observed exactly once, in any order within a
// phase; the engine guarantees all of a round's observes land before the
// next round's Next calls.
func (p *Plan) Observe(frame int64, chunk int, hit bool) error {
	if p.applied[frame] {
		return fmt.Errorf("trackquery: frame %d observed twice", frame)
	}
	p.applied[frame] = true
	if chunk >= 0 {
		if p.phase != PhaseCoarse {
			return fmt.Errorf("trackquery: coarse observe for frame %d in phase %v", frame, p.phase)
		}
		p.pendingCoarse--
		d0 := 0
		if hit {
			d0 = 1
			p.coarseHits++
			p.hits = append(p.hits, frame)
		}
		return p.sampler.Update(chunk, d0, 0)
	}
	if p.phase != PhaseRefine {
		return fmt.Errorf("trackquery: refine observe for frame %d in phase %v", frame, p.phase)
	}
	if hit {
		p.refineHits++
	}
	i := sort.Search(len(p.intervals), func(i int) bool { return p.intervals[i].End >= frame })
	if i == len(p.intervals) || frame < p.intervals[i].Start {
		return fmt.Errorf("trackquery: refine frame %d outside every interval", frame)
	}
	p.missing[i]--
	p.totalMissing--
	if p.missing[i] == 0 {
		p.ready = append(p.ready, p.intervals[i])
	}
	if p.totalMissing == 0 && p.refineIdx == len(p.refineQueue) {
		p.phase = PhaseDone
	}
	return nil
}

// transition closes phase 1: merge padded hit neighborhoods, clip them to
// chunk coverage, and stage the refine queue. Called with zero outstanding
// coarse observes, so the applied set is the full grid.
func (p *Plan) transition() {
	hits := append([]int64(nil), p.hits...)
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })

	// Merge [h-Pad, h+Pad] neighborhoods (adjacent ranges coalesce).
	var merged []Interval
	for _, h := range hits {
		lo, hi := h-p.cfg.Pad, h+p.cfg.Pad
		if lo < 0 {
			lo = 0
		}
		if hi > p.cfg.NumFrames-1 {
			hi = p.cfg.NumFrames - 1
		}
		if n := len(merged); n > 0 && lo <= merged[n-1].End+1 {
			if hi > merged[n-1].End {
				merged[n-1].End = hi
			}
			continue
		}
		merged = append(merged, Interval{Start: lo, End: hi})
	}
	p.intervals = clipToCoverage(merged, p.cfg.Chunks)

	if p.cfg.CoarseOnly {
		p.ready = append(p.ready, p.intervals...)
		p.phase = PhaseDone
		return
	}

	p.missing = make([]int, len(p.intervals))
	for i, iv := range p.intervals {
		for f := iv.Start; f <= iv.End; f++ {
			if !p.applied[f] {
				p.refineQueue = append(p.refineQueue, f)
				p.missing[i]++
			}
		}
		if p.missing[i] == 0 {
			p.ready = append(p.ready, iv)
		}
	}
	p.totalMissing = len(p.refineQueue)
	if p.totalMissing == 0 {
		p.phase = PhaseDone
		return
	}
	p.phase = PhaseRefine
}

// clipToCoverage intersects the merged intervals with the union of chunk
// frame ranges; an interval straddling a coverage hole splits. With full
// coverage (the common case) this is the identity.
func clipToCoverage(ivs []Interval, chunks []video.Chunk) []Interval {
	cov := make([]Interval, 0, len(chunks))
	for _, c := range chunks {
		cov = append(cov, Interval{Start: c.Start, End: c.End - 1})
	}
	sort.Slice(cov, func(i, j int) bool { return cov[i].Start < cov[j].Start })
	var mergedCov []Interval
	for _, c := range cov {
		if n := len(mergedCov); n > 0 && c.Start <= mergedCov[n-1].End+1 {
			if c.End > mergedCov[n-1].End {
				mergedCov[n-1].End = c.End
			}
			continue
		}
		mergedCov = append(mergedCov, c)
	}
	var out []Interval
	for _, iv := range ivs {
		for _, c := range mergedCov {
			lo, hi := iv.Start, iv.End
			if c.Start > lo {
				lo = c.Start
			}
			if c.End < hi {
				hi = c.End
			}
			if lo <= hi {
				out = append(out, Interval{Start: lo, End: hi})
			}
		}
	}
	return out
}

// TakeReady drains and returns the intervals whose every frame has been
// observed since the last call, in completion order.
func (p *Plan) TakeReady() []Interval {
	r := p.ready
	p.ready = nil
	return r
}

// Phase returns the current phase.
func (p *Plan) Phase() Phase { return p.phase }

// Done reports whether every interval is fully observed.
func (p *Plan) Done() bool { return p.phase == PhaseDone }

// MarginalValue estimates the value of the next detector frame, on the
// same "expected new results per frame" scale the engine's global budget
// ranks distinct-object queries by: during coarse it is the sampler's best
// chunk point estimate; during refine it is the hit density carried into
// the remaining densification work.
func (p *Plan) MarginalValue() float64 {
	switch p.phase {
	case PhaseCoarse:
		return p.sampler.MaxPointEstimate()
	case PhaseRefine:
		a0, b0 := p.cfg.Alpha0, p.cfg.Beta0
		if a0 == 0 {
			a0 = core.DefaultAlpha0
		}
		if b0 == 0 {
			b0 = core.DefaultBeta0
		}
		return (float64(p.coarseHits+p.refineHits) + a0) / (float64(p.totalMissing) + b0)
	default:
		return 0
	}
}

// Intervals returns the candidate intervals (valid after phase 1; nil
// before). Callers must not mutate the slice.
func (p *Plan) Intervals() []Interval { return p.intervals }

// Stats returns issue/hit counters: coarse frames issued, refine frames
// issued, coarse hits, refine hits.
func (p *Plan) Stats() (coarseIssued, refineIssued, coarseHits, refineHits int64) {
	return p.coarseIssued, p.refineIssued, p.coarseHits, p.refineHits
}
