// Package opt solves the paper's offline optimal-allocation benchmark
// (Eq. IV.1): given per-instance, per-chunk hit probabilities p_ij, find the
// static chunk-weight vector w on the probability simplex maximizing the
// expected number of distinct instances found after n samples,
//
//	maximize_w  Σ_i 1 − (1 − p_i·w)^n .
//
// The paper solves this with CVXPY; the objective is concave in w (each term
// is a concave composition of a convex decreasing function with an affine
// map), so projected gradient ascent with simplex projection converges to
// the same optimum. The resulting dashed "optimal allocation" curves appear
// in Figures 3 and 4.
package opt

import (
	"fmt"
	"math"
	"sort"

	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

// Problem holds the per-instance hit probability vectors. P[i][j] is the
// probability that a frame sampled uniformly from chunk j shows instance i.
type Problem struct {
	P [][]float64
	m int // number of chunks
}

// NewProblem validates and wraps a probability matrix.
func NewProblem(p [][]float64) (*Problem, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("opt: no instances")
	}
	m := len(p[0])
	if m == 0 {
		return nil, fmt.Errorf("opt: no chunks")
	}
	for i, row := range p {
		if len(row) != m {
			return nil, fmt.Errorf("opt: row %d has %d chunks, want %d", i, len(row), m)
		}
		for j, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return nil, fmt.Errorf("opt: p[%d][%d] = %v outside [0,1]", i, j, v)
			}
		}
	}
	return &Problem{P: p, m: m}, nil
}

// FromInstances builds the probability matrix from ground-truth instance
// intervals and a chunk layout: p_ij = |frames of i inside chunk j| / |j|.
func FromInstances(instances []track.Instance, chunks []video.Chunk) (*Problem, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("opt: no instances")
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("opt: no chunks")
	}
	p := make([][]float64, len(instances))
	for i, in := range instances {
		row := make([]float64, len(chunks))
		for j, c := range chunks {
			lo := in.Start
			if c.Start > lo {
				lo = c.Start
			}
			hi := in.End + 1 // instance interval is inclusive
			if c.End < hi {
				hi = c.End
			}
			if hi > lo {
				row[j] = float64(hi-lo) / float64(c.Len())
			}
		}
		p[i] = row
	}
	return NewProblem(p)
}

// NumChunks returns the number of chunks M.
func (pr *Problem) NumChunks() int { return pr.m }

// NumInstances returns the number of instances N.
func (pr *Problem) NumInstances() int { return len(pr.P) }

// ExpectedN returns Σ_i 1 − (1 − p_i·w)^n, the expected number of distinct
// instances found after n samples allocated by weights w.
func (pr *Problem) ExpectedN(w []float64, n float64) (float64, error) {
	if len(w) != pr.m {
		return 0, fmt.Errorf("opt: weight vector has %d entries, want %d", len(w), pr.m)
	}
	total := 0.0
	for _, row := range pr.P {
		q := dot(row, w)
		if q > 1 {
			q = 1
		}
		total += 1 - math.Pow(1-q, n)
	}
	return total, nil
}

// gradient writes ∂/∂w_j of the objective into grad.
func (pr *Problem) gradient(w []float64, n float64, grad []float64) {
	for j := range grad {
		grad[j] = 0
	}
	for _, row := range pr.P {
		q := dot(row, w)
		if q >= 1 {
			continue // saturated term contributes zero gradient
		}
		coef := n * math.Pow(1-q, n-1)
		for j, pj := range row {
			grad[j] += coef * pj
		}
	}
}

// OptimalWeights maximizes the Eq. IV.1 objective by projected gradient
// ascent with backtracking. iters <= 0 selects 300 iterations, enough for
// the experiment sizes in the paper.
func (pr *Problem) OptimalWeights(n float64, iters int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("opt: sample budget n must be positive, got %v", n)
	}
	if iters <= 0 {
		iters = 300
	}
	w := UniformWeights(pr.m)
	grad := make([]float64, pr.m)
	cur, err := pr.ExpectedN(w, n)
	if err != nil {
		return nil, err
	}
	step := 1.0 / (n*float64(pr.NumInstances()) + 1) * float64(pr.m)
	if step <= 0 || math.IsInf(step, 0) {
		step = 1e-3
	}
	for it := 0; it < iters; it++ {
		pr.gradient(w, n, grad)
		improved := false
		for try := 0; try < 40; try++ {
			cand := make([]float64, pr.m)
			for j := range cand {
				cand[j] = w[j] + step*grad[j]
			}
			ProjectSimplex(cand)
			val, err := pr.ExpectedN(cand, n)
			if err != nil {
				return nil, err
			}
			if val > cur+1e-12 {
				w, cur = cand, val
				improved = true
				step *= 1.3 // cautiously re-grow after successes
				break
			}
			step /= 2
		}
		if !improved {
			break // converged: no ascent direction at any tried step
		}
	}
	return w, nil
}

// UniformWeights returns the length-m uniform weight vector (random
// sampling's allocation).
func UniformWeights(m int) []float64 {
	w := make([]float64, m)
	for j := range w {
		w[j] = 1 / float64(m)
	}
	return w
}

// ProjectSimplex projects v in place onto the probability simplex
// {w : w_j >= 0, Σ w_j = 1} in Euclidean distance, using the sort-based
// algorithm of Duchi et al. (2008).
func ProjectSimplex(v []float64) {
	n := len(v)
	if n == 0 {
		return
	}
	u := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	var cum float64
	var theta float64
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - 1) / float64(i+1)
		// At i=0 this is u[0]-(u[0]-1) = 1 > 0, so theta is always set.
		if u[i]-t > 0 {
			theta = t
		}
	}
	for i := range v {
		v[i] -= theta
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

// ExpectedCurve evaluates ExpectedN at each sample count in ns, producing
// the dashed optimal/random trajectories of Figures 3 and 4. When
// reoptimize is true the weights are re-solved for every n (the paper's
// "optimal allocation as a function of n"); otherwise the provided weights
// are used throughout.
func (pr *Problem) ExpectedCurve(ns []int64, w []float64, reoptimize bool) ([]float64, error) {
	out := make([]float64, len(ns))
	for k, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("opt: non-positive sample count %d", n)
		}
		weights := w
		if reoptimize {
			var err error
			weights, err = pr.OptimalWeights(float64(n), 0)
			if err != nil {
				return nil, err
			}
		}
		v, err := pr.ExpectedN(weights, float64(n))
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
