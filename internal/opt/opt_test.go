package opt

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

func TestProjectSimplexBasics(t *testing.T) {
	// Already on the simplex: unchanged.
	v := []float64{0.25, 0.75}
	ProjectSimplex(v)
	if math.Abs(v[0]-0.25) > 1e-12 || math.Abs(v[1]-0.75) > 1e-12 {
		t.Fatalf("simplex point moved: %v", v)
	}
	// All-negative input projects onto the nearest vertex: for (-1,-2,-3)
	// that is (1, 0, 0).
	v = []float64{-1, -2, -3}
	ProjectSimplex(v)
	if math.Abs(v[0]-1) > 1e-9 || math.Abs(v[1]) > 1e-9 || math.Abs(v[2]) > 1e-9 {
		t.Fatalf("negative input projection = %v", v)
	}
}

func TestProjectSimplexKnownCase(t *testing.T) {
	// Projection of (1, 1) is (0.5, 0.5); of (2, 0) is (1, 0).
	v := []float64{1, 1}
	ProjectSimplex(v)
	if math.Abs(v[0]-0.5) > 1e-12 || math.Abs(v[1]-0.5) > 1e-12 {
		t.Fatalf("project(1,1) = %v", v)
	}
	v = []float64{2, 0}
	ProjectSimplex(v)
	if math.Abs(v[0]-1) > 1e-12 || math.Abs(v[1]) > 1e-12 {
		t.Fatalf("project(2,0) = %v", v)
	}
}

func TestProjectSimplexProperty(t *testing.T) {
	f := func(raw [6]int16) bool {
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x) / 1000
		}
		ProjectSimplex(v)
		sum := 0.0
		for _, x := range v {
			if x < -1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := NewProblem([][]float64{{}}); err == nil {
		t.Error("zero-chunk problem accepted")
	}
	if _, err := NewProblem([][]float64{{0.5}, {0.1, 0.2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewProblem([][]float64{{1.5}}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewProblem([][]float64{{-0.1}}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestExpectedNSingleInstance(t *testing.T) {
	// One instance entirely in chunk 0 with p=0.1 under full weight.
	pr, err := NewProblem([][]float64{{0.1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// All weight on chunk 0, n=10: 1 - 0.9^10.
	got, err := pr.ExpectedN([]float64{1, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.9, 10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedN = %v, want %v", got, want)
	}
	// All weight on the empty chunk: zero.
	got, err = pr.ExpectedN([]float64{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("ExpectedN on empty chunk = %v", got)
	}
}

func TestExpectedNWeightLengthMismatch(t *testing.T) {
	pr, _ := NewProblem([][]float64{{0.1, 0}})
	if _, err := pr.ExpectedN([]float64{1}, 10); err == nil {
		t.Error("short weight vector accepted")
	}
}

func TestOptimalWeightsAllMassInOneChunk(t *testing.T) {
	// Every instance lives in chunk 1: the optimum puts all weight there.
	pr, err := NewProblem([][]float64{
		{0, 0.05, 0}, {0, 0.08, 0}, {0, 0.02, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := pr.OptimalWeights(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w[1] < 0.95 {
		t.Fatalf("optimal weights = %v, want mass on chunk 1", w)
	}
}

func TestOptimalWeightsSymmetric(t *testing.T) {
	// Two identical chunks: optimum is uniform (by symmetry and concavity).
	pr, err := NewProblem([][]float64{
		{0.1, 0}, {0, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := pr.OptimalWeights(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.5) > 0.02 {
		t.Fatalf("symmetric weights = %v, want ~(0.5, 0.5)", w)
	}
}

func TestOptimalBeatsUniformUnderSkew(t *testing.T) {
	// 10 instances in chunk 0, 1 instance in chunk 1, tiny probabilities:
	// the optimum favors chunk 0 and achieves a higher objective.
	var p [][]float64
	for i := 0; i < 10; i++ {
		p = append(p, []float64{0.01, 0})
	}
	p = append(p, []float64{0, 0.01})
	pr, err := NewProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	w, err := pr.OptimalWeights(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := pr.ExpectedN(w, n)
	unif, _ := pr.ExpectedN(UniformWeights(2), n)
	if opt <= unif {
		t.Fatalf("optimal %v <= uniform %v", opt, unif)
	}
	if w[0] <= w[1] {
		t.Fatalf("weights %v do not favor the rich chunk", w)
	}
}

func TestOptimalWeightsValidation(t *testing.T) {
	pr, _ := NewProblem([][]float64{{0.1}})
	if _, err := pr.OptimalWeights(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := pr.OptimalWeights(-5, 0); err == nil {
		t.Error("negative n accepted")
	}
}

func TestFromInstances(t *testing.T) {
	instances := []track.Instance{
		{ID: 0, Class: "car", Start: 0, End: 49, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 1, Class: "car", Start: 90, End: 109, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
	}
	chunks, err := video.SplitRange(0, 200, 2) // [0,100) and [100,200)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := FromInstances(instances, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 0: 50 frames in chunk 0 of size 100.
	if math.Abs(pr.P[0][0]-0.5) > 1e-12 || pr.P[0][1] != 0 {
		t.Fatalf("instance 0 row = %v", pr.P[0])
	}
	// Instance 1 spans the boundary: frames 90..99 in chunk 0, 100..109 in 1.
	if math.Abs(pr.P[1][0]-0.1) > 1e-12 || math.Abs(pr.P[1][1]-0.1) > 1e-12 {
		t.Fatalf("instance 1 row = %v", pr.P[1])
	}
}

func TestFromInstancesValidation(t *testing.T) {
	chunks, _ := video.SplitRange(0, 100, 2)
	if _, err := FromInstances(nil, chunks); err == nil {
		t.Error("no instances accepted")
	}
	if _, err := FromInstances([]track.Instance{{ID: 0, Start: 0, End: 1}}, nil); err == nil {
		t.Error("no chunks accepted")
	}
}

func TestExpectedCurveMonotone(t *testing.T) {
	pr, err := NewProblem([][]float64{{0.01, 0.001}, {0.002, 0.03}})
	if err != nil {
		t.Fatal(err)
	}
	ns := []int64{1, 10, 100, 1000}
	curve, err := pr.ExpectedCurve(ns, UniformWeights(2), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	// Reoptimized curve dominates the fixed-uniform curve.
	optCurve, err := pr.ExpectedCurve(ns, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve {
		if optCurve[i] < curve[i]-1e-9 {
			t.Fatalf("optimal curve below uniform at %d: %v < %v", ns[i], optCurve[i], curve[i])
		}
	}
}

func TestExpectedCurveRejectsBadN(t *testing.T) {
	pr, _ := NewProblem([][]float64{{0.1}})
	if _, err := pr.ExpectedCurve([]int64{0}, UniformWeights(1), false); err == nil {
		t.Error("n=0 accepted")
	}
}
