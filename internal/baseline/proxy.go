// Package baseline implements the comparison methods from §II-B and §V:
// sequential scanning, uniform random sampling, global random+, and the
// proxy-score approach representative of BlazeIt.
//
// The proxy approach trains a cheap model per query, scores every frame of
// the dataset in an upfront sequential scan (at io+decode throughput), and
// then runs the expensive detector on frames in descending score order. The
// paper's central observation (Table I) is that the scan alone often costs
// more than an entire ExSample query; the proxy model here is therefore
// parameterized by score quality rather than by network architecture — a
// perfect proxy (quality 1) is the strongest possible version of the
// baseline, and the scan cost dominates regardless.
package baseline

import (
	"fmt"
	"sort"

	"github.com/exsample/exsample/internal/track"
)

// ProxyScorer assigns each frame a score approximating "contains a relevant
// object". Quality q blends the ground-truth signal with hash noise:
// q=1 ranks all positive frames above all negatives (a perfect proxy);
// q=0 is a random permutation (an untrained proxy).
type ProxyScorer struct {
	idx     *track.Index
	class   string
	quality float64
	seed    uint64
}

// NewProxyScorer builds a scorer for one query class over ground truth.
func NewProxyScorer(idx *track.Index, class string, quality float64, seed uint64) (*ProxyScorer, error) {
	if idx == nil {
		return nil, fmt.Errorf("baseline: nil index")
	}
	if quality < 0 || quality > 1 {
		return nil, fmt.Errorf("baseline: quality %v outside [0,1]", quality)
	}
	return &ProxyScorer{idx: idx, class: class, quality: quality, seed: seed}, nil
}

// Score returns the proxy score for a frame, in [0, 2).
func (p *ProxyScorer) Score(frame int64) float64 {
	var truth float64
	var buf [4]track.Instance
	var visible []track.Instance
	if p.class == "" {
		visible = p.idx.At(frame, buf[:0])
	} else {
		visible = p.idx.AtClass(frame, p.class, buf[:0])
	}
	if len(visible) > 0 {
		truth = 1
	}
	noise := hash01(p.seed, uint64(frame))
	return p.quality*truth + (1-p.quality)*noise + p.quality*noise*1e-6
}

func hash01(seed, a uint64) float64 {
	x := seed ^ (a * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// ProxyOrder emits frames in descending proxy score, after a full-dataset
// scoring pass. It implements video.FrameOrder. The scan cost is not part of
// the order itself — callers charge it via costmodel.ScanSeconds — but
// ScannedFrames records how much work the scan did.
type ProxyOrder struct {
	frames []int64
	pos    int
	// ScannedFrames is the number of frames the scoring pass touched
	// (always the full range).
	ScannedFrames int64

	dupRadius int64
	emitted   map[int64]bool // blocked buckets (frame / dupRadius)
	deferred  []int64
	inDefer   bool
}

// NewProxyOrder scores every frame in [start, end) and prepares the
// descending-score order. dupRadius > 0 enables the duplicate-avoidance
// heuristic (§III): frames within dupRadius of an already-emitted frame are
// deferred until all other frames have been emitted.
func NewProxyOrder(scorer *ProxyScorer, start, end, dupRadius int64) (*ProxyOrder, error) {
	if scorer == nil {
		return nil, fmt.Errorf("baseline: nil scorer")
	}
	return NewProxyOrderFunc(scorer.Score, start, end, dupRadius)
}

// NewProxyOrderFunc is NewProxyOrder over an arbitrary scoring function —
// the shape sharded sources provide, where per-frame scores route to the
// owning shard's scorer.
func NewProxyOrderFunc(score func(frame int64) float64, start, end, dupRadius int64) (*ProxyOrder, error) {
	if score == nil {
		return nil, fmt.Errorf("baseline: nil scorer")
	}
	if end <= start {
		return nil, fmt.Errorf("baseline: empty range [%d, %d)", start, end)
	}
	n := end - start
	type scored struct {
		frame int64
		score float64
	}
	all := make([]scored, n)
	for i := int64(0); i < n; i++ {
		f := start + i
		all[i] = scored{frame: f, score: score(f)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].frame < all[j].frame
	})
	frames := make([]int64, n)
	for i, s := range all {
		frames[i] = s.frame
	}
	po := &ProxyOrder{
		frames:        frames,
		ScannedFrames: n,
		dupRadius:     dupRadius,
	}
	if dupRadius > 0 {
		po.emitted = make(map[int64]bool)
	}
	return po, nil
}

// Next returns the next frame in proxy order.
func (p *ProxyOrder) Next() (int64, bool) {
	if p.dupRadius <= 0 {
		if p.pos >= len(p.frames) {
			return 0, false
		}
		f := p.frames[p.pos]
		p.pos++
		return f, true
	}
	for !p.inDefer {
		if p.pos >= len(p.frames) {
			p.inDefer = true
			p.pos = 0
			break
		}
		f := p.frames[p.pos]
		p.pos++
		if p.blocked(f) {
			p.deferred = append(p.deferred, f)
			continue
		}
		p.block(f)
		return f, true
	}
	if p.pos < len(p.deferred) {
		f := p.deferred[p.pos]
		p.pos++
		return f, true
	}
	return 0, false
}

func (p *ProxyOrder) blocked(f int64) bool {
	return p.emitted[f/p.dupRadius]
}

func (p *ProxyOrder) block(f int64) {
	b := f / p.dupRadius
	p.emitted[b] = true
}

// Remaining returns how many frames have not been emitted yet.
func (p *ProxyOrder) Remaining() int64 {
	if p.dupRadius <= 0 {
		return int64(len(p.frames) - p.pos)
	}
	if p.inDefer {
		return int64(len(p.deferred) - p.pos)
	}
	return int64(len(p.frames)-p.pos) + int64(len(p.deferred))
}
