package baseline

import (
	"testing"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

func mkIndex(t *testing.T, numFrames int64, intervals ...[2]int64) *track.Index {
	t.Helper()
	var instances []track.Instance
	for i, iv := range intervals {
		instances = append(instances, track.Instance{
			ID: i, Class: "car", Start: iv[0], End: iv[1],
			StartBox: geom.Rect(0, float64(i)*200, 50, 50),
			EndBox:   geom.Rect(100, float64(i)*200, 50, 50),
		})
	}
	idx, err := track.NewIndex(instances, numFrames, 0)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestProxyScorerValidation(t *testing.T) {
	idx := mkIndex(t, 100)
	if _, err := NewProxyScorer(nil, "car", 1, 1); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := NewProxyScorer(idx, "car", -0.1, 1); err == nil {
		t.Error("negative quality accepted")
	}
	if _, err := NewProxyScorer(idx, "car", 1.1, 1); err == nil {
		t.Error("quality > 1 accepted")
	}
}

func TestPerfectProxyRanksPositivesFirst(t *testing.T) {
	// Frames 100..199 contain the object out of 1000 frames total.
	idx := mkIndex(t, 1000, [2]int64{100, 199})
	scorer, err := NewProxyScorer(idx, "car", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	order, err := NewProxyOrder(scorer, 0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if order.ScannedFrames != 1000 {
		t.Fatalf("ScannedFrames = %d", order.ScannedFrames)
	}
	// The first 100 emitted frames must all be positives.
	for i := 0; i < 100; i++ {
		f, ok := order.Next()
		if !ok {
			t.Fatal("order exhausted early")
		}
		if f < 100 || f > 199 {
			t.Fatalf("emission %d = frame %d, want a positive frame", i, f)
		}
	}
	// The 101st cannot be a positive (only 100 exist).
	f, ok := order.Next()
	if !ok || (f >= 100 && f <= 199) {
		t.Fatalf("emission 100 = %d", f)
	}
}

func TestZeroQualityProxyIsUninformative(t *testing.T) {
	idx := mkIndex(t, 10000, [2]int64{0, 99})
	scorer, err := NewProxyScorer(idx, "car", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	order, err := NewProxyOrder(scorer, 0, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Count positives in the first 1000 emissions; expectation ~10 under a
	// random permutation (1% positive rate).
	pos := 0
	for i := 0; i < 1000; i++ {
		f, ok := order.Next()
		if !ok {
			t.Fatal("exhausted")
		}
		if f < 100 {
			pos++
		}
	}
	if pos > 40 {
		t.Fatalf("%d positives in first 1000 draws of a quality-0 proxy", pos)
	}
}

func TestProxyOrderIsPermutation(t *testing.T) {
	idx := mkIndex(t, 500, [2]int64{50, 80})
	scorer, err := NewProxyScorer(idx, "car", 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, dupRadius := range []int64{0, 25} {
		order, err := NewProxyOrder(scorer, 0, 500, dupRadius)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool)
		for {
			f, ok := order.Next()
			if !ok {
				break
			}
			if f < 0 || f >= 500 || seen[f] {
				t.Fatalf("dupRadius %d: bad emission %d", dupRadius, f)
			}
			seen[f] = true
		}
		if len(seen) != 500 {
			t.Fatalf("dupRadius %d: emitted %d frames", dupRadius, len(seen))
		}
		if order.Remaining() != 0 {
			t.Fatalf("Remaining = %d", order.Remaining())
		}
	}
}

func TestDupAvoidanceSpreadsEarlyEmissions(t *testing.T) {
	// One long positive interval; with dup avoidance the first few
	// emissions must come from distinct radius-50 buckets.
	idx := mkIndex(t, 1000, [2]int64{0, 999})
	scorer, err := NewProxyScorer(idx, "car", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	order, err := NewProxyOrder(scorer, 0, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make(map[int64]bool)
	for i := 0; i < 20; i++ {
		f, ok := order.Next()
		if !ok {
			t.Fatal("exhausted")
		}
		b := f / 50
		if buckets[b] {
			t.Fatalf("bucket %d hit twice in first 20 emissions", b)
		}
		buckets[b] = true
	}
}

func TestProxyOrderValidation(t *testing.T) {
	idx := mkIndex(t, 100)
	scorer, err := NewProxyScorer(idx, "car", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProxyOrder(nil, 0, 100, 0); err == nil {
		t.Error("nil scorer accepted")
	}
	if _, err := NewProxyOrder(scorer, 50, 50, 0); err == nil {
		t.Error("empty range accepted")
	}
}

func TestScoreClassFiltering(t *testing.T) {
	instances := []track.Instance{
		{ID: 0, Class: "car", Start: 0, End: 49, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
		{ID: 1, Class: "bus", Start: 50, End: 99, StartBox: geom.Rect(0, 0, 1, 1), EndBox: geom.Rect(0, 0, 1, 1)},
	}
	idx, err := track.NewIndex(instances, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := NewProxyScorer(idx, "bus", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := scorer.Score(25); s >= 1 {
		t.Fatalf("car-only frame scored %v for bus query", s)
	}
	if s := scorer.Score(75); s < 1 {
		t.Fatalf("bus frame scored %v", s)
	}
}
