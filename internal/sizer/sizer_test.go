package sizer

import (
	"reflect"
	"testing"
)

// traceQuotas drives a fresh controller through a synthetic latency trace
// (one (frames, seconds) observation per entry, frames = current quota)
// and returns the quota after each observation.
func traceQuotas(t *testing.T, cfg Config, perFrame []float64) []int {
	t.Helper()
	c, err := NewController(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(perFrame))
	for i, per := range perFrame {
		q := c.Quota()
		c.Observe(q, per*float64(q))
		out[i] = c.Quota()
	}
	return out
}

func flatTrace(n int, per float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = per
	}
	return out
}

// TestAIMDGrowsWhileFlat: a flat latency trace grows the quota additively
// from Min to Max and holds there.
func TestAIMDGrowsWhileFlat(t *testing.T) {
	quotas := traceQuotas(t, Config{Min: 4, Max: 12}, flatTrace(12, 0.01))
	want := []int{5, 6, 7, 8, 9, 10, 11, 12, 12, 12, 12, 12}
	if !reflect.DeepEqual(quotas, want) {
		t.Fatalf("flat-trace quota schedule = %v, want %v", quotas, want)
	}
}

// TestAIMDShrinksOnInflation: a latency spike past the inflation threshold
// halves the quota (never below Min), and recovery regrows it.
func TestAIMDShrinksOnInflation(t *testing.T) {
	trace := append(flatTrace(12, 0.01), 0.05, 0.05, 0.05)
	quotas := traceQuotas(t, Config{Min: 4, Max: 16}, trace)
	// After 12 flat observations the quota is 16; the spikes then shrink
	// multiplicatively (the EWMA needs one observation to cross 1.5x).
	if got := quotas[11]; got != 16 {
		t.Fatalf("quota after flat phase = %d, want 16", got)
	}
	end := quotas[len(quotas)-1]
	if end >= 16 || end < 4 {
		t.Fatalf("quota after inflation = %d, want shrunk into [4, 16)", end)
	}
	c, _ := NewController(Config{Min: 4, Max: 16}, nil)
	for i := 0; i < 50; i++ {
		c.Observe(c.Quota(), 0.05*float64(c.Quota())) // alternating spikes
		c.Observe(c.Quota(), 0.001*float64(c.Quota()))
	}
	if q := c.Quota(); q < 4 {
		t.Fatalf("quota fell below Min: %d", q)
	}
}

// TestQuotaScheduleDeterministic: the same synthetic trace always yields
// the same quota schedule — the sizer never consults a clock or RNG.
func TestQuotaScheduleDeterministic(t *testing.T) {
	trace := []float64{0.01, 0.01, 0.012, 0.03, 0.01, 0.009, 0.02, 0.01, 0.01, 0.05, 0.01, 0.01}
	a := traceQuotas(t, Config{Min: 2, Max: 32}, trace)
	b := traceQuotas(t, Config{Min: 2, Max: 32}, trace)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same trace, different schedules:\n%v\n%v", a, b)
	}
}

// TestCapacityLossShrinks: a breaker-open event halves the quota
// immediately, whatever the latency EWMA says.
func TestCapacityLossShrinks(t *testing.T) {
	var counters Counters
	c, err := NewController(Config{Min: 2, Max: 64}, &counters)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		c.Observe(c.Quota(), 0.001*float64(c.Quota()))
	}
	before := c.Quota()
	if before != 32 {
		t.Fatalf("quota after 30 flat rounds = %d, want 32", before)
	}
	c.CapacityLoss()
	if got, want := c.Quota(), 16; got != want {
		t.Fatalf("quota after capacity loss = %d, want %d", got, want)
	}
	if counters.CapacityLosses.Load() != 1 || counters.Shrinks.Load() != 1 {
		t.Fatalf("counters = %d losses / %d shrinks, want 1/1",
			counters.CapacityLosses.Load(), counters.Shrinks.Load())
	}
	if counters.Peak.Load() != int64(before) {
		t.Fatalf("Peak = %d, want %d", counters.Peak.Load(), before)
	}
}

// TestBaselineDrift: a backend that becomes permanently slower re-anchors
// the baseline, so the controller resumes growing instead of shrinking
// forever.
func TestBaselineDrift(t *testing.T) {
	c, err := NewController(Config{Min: 4, Max: 64, Drift: 0.2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Observe(c.Quota(), 0.001*float64(c.Quota()))
	}
	// 10x slower from here on, permanently.
	var grew bool
	prev := c.Quota()
	for i := 0; i < 200; i++ {
		c.Observe(c.Quota(), 0.01*float64(c.Quota()))
		if c.Quota() > prev {
			grew = true
		}
		prev = c.Quota()
	}
	if !grew {
		t.Fatal("controller never resumed growth after the fleet slowed permanently")
	}
}

// TestFleetMinAcrossBackends: the fleet's quota is the minimum across its
// per-backend controllers — the slowest shard gates the round.
func TestFleetMinAcrossBackends(t *testing.T) {
	var counters Counters
	f, err := NewFleet(Config{Min: 2, Max: 32}, &counters)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Quota(); got != 2 {
		t.Fatalf("initial fleet quota = %d, want 2", got)
	}
	// Backend 1 stays flat and fast; backend 2 inflates constantly.
	for i := 0; i < 20; i++ {
		f.Observe(1, f.Quota(), 0.001*float64(f.Quota()))
	}
	fastOnly := f.Quota()
	if fastOnly <= 2 {
		t.Fatalf("single-backend fleet never grew: quota %d", fastOnly)
	}
	for i := 0; i < 20; i++ {
		f.Observe(2, f.Quota(), 0.001*float64(f.Quota()))
		f.Observe(2, f.Quota(), 0.05*float64(f.Quota()))
	}
	if got := f.Quota(); got > fastOnly {
		t.Fatalf("fleet quota %d exceeds the fast backend's %d despite a slow sibling", got, fastOnly)
	}
	// The slow backend's controller pins the min at (or near) Min.
	if got := f.Quota(); got > 8 {
		t.Fatalf("fleet quota %d not gated by the inflating backend", got)
	}
	f.CapacityLossAll()
	if counters.CapacityLosses.Load() == 0 {
		t.Fatal("CapacityLossAll not counted")
	}
}

// TestFleetScopedCapacityLoss: with per-replica controllers seeded, a
// capacity-loss event scoped to one replica shrinks only that replica's
// controller — the unaffected sibling's quota keeps growing on the same
// flat trace, and the key's summed quota stays strictly above what an
// unscoped shrink-everything fleet is left with. The traces are fixed, so
// the quota schedules are golden.
func TestFleetScopedCapacityLoss(t *testing.T) {
	var scopedC, allC Counters
	cfg := Config{Min: 8, Max: 64}
	scoped, err := NewFleet(cfg, &scopedC)
	if err != nil {
		t.Fatal(err)
	}
	all, err := NewFleet(cfg, &allC)
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{1, 1}
	scoped.SeedReplicas(7, weights)
	all.SeedReplicas(7, weights)
	flat := func(f *Fleet, rounds int) {
		for i := 0; i < rounds; i++ {
			f.Observe(7, f.Quota(), 0.001*float64(f.Quota()))
		}
	}
	flat(scoped, 12)
	flat(all, 12)
	grown := scoped.Quota()
	if grown != all.Quota() {
		t.Fatalf("identical traces diverged before the loss: scoped %d, all %d", grown, all.Quota())
	}
	if grown <= cfg.Min {
		t.Fatalf("seeded fleet never grew: quota %d", grown)
	}
	// Replica 1's breaker opens. Scoped: only its controller halves.
	scoped.CapacityLoss(7, 1)
	all.CapacityLossAll()
	if scopedC.CapacityLosses.Load() != 1 {
		t.Fatalf("scoped CapacityLosses = %d, want 1", scopedC.CapacityLosses.Load())
	}
	afterScoped, afterAll := scoped.Quota(), all.Quota()
	if afterScoped >= grown {
		t.Fatalf("scoped loss did not shrink: %d -> %d", grown, afterScoped)
	}
	if afterScoped <= afterAll {
		t.Fatalf("scoped loss (%d) should keep more quota than shrink-everything (%d)", afterScoped, afterAll)
	}
	// The unaffected replica keeps growing: the next flat rounds must
	// raise the summed quota every step until replica 0 is back at its
	// pre-loss level plus growth — impossible if the shrink had hit it.
	prev := afterScoped
	for i := 0; i < 4; i++ {
		scoped.Observe(7, scoped.Quota(), 0.001*float64(scoped.Quota()))
		if q := scoped.Quota(); q <= prev {
			t.Fatalf("round %d after scoped loss: quota %d did not grow past %d", i, q, prev)
		} else {
			prev = q
		}
	}
	// A loss attributed to a replica the key never seeded falls back to
	// shrinking something rather than nothing, and an unknown key only
	// counts the event.
	scoped.CapacityLoss(99, 0)
	if scopedC.CapacityLosses.Load() != 2 {
		t.Fatalf("unknown-key loss not counted: %d", scopedC.CapacityLosses.Load())
	}
	if q := scoped.Quota(); q != prev {
		t.Fatalf("unknown-key loss changed the quota: %d -> %d", prev, q)
	}
}

// TestFleetSeededSplitMatchesSingle: a seeded key fed the same flat trace
// as an unseeded one converges to the same summed quota — per-replica
// bookkeeping must not change how much total capacity a healthy fleet
// discovers.
func TestFleetSeededSplitMatchesSingle(t *testing.T) {
	cfg := Config{Min: 8, Max: 64}
	seeded, err := NewFleet(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewFleet(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeded.SeedReplicas(1, []float64{4, 3, 3, 3})
	for i := 0; i < 200; i++ {
		seeded.Observe(1, seeded.Quota(), 0.001*float64(seeded.Quota()))
		plain.Observe(1, plain.Quota(), 0.001*float64(plain.Quota()))
	}
	if got := plain.Quota(); got != cfg.Max {
		t.Fatalf("plain fleet stopped at %d, want Max %d", got, cfg.Max)
	}
	if got := seeded.Quota(); got != cfg.Max {
		t.Fatalf("seeded fleet stopped at %d, want Max %d", got, cfg.Max)
	}
}

// TestConfigValidate rejects out-of-range parameters and defaults Max.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Min: 0},
		{Min: 2, Shrink: 1.5},
		{Min: 2, Inflation: 0.5},
		{Min: 2, Decay: 2},
		{Min: 2, Drift: 1},
		{Min: 2, Step: -1},
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg, nil); err == nil {
			t.Fatalf("config %d (%+v) accepted", i, cfg)
		}
	}
	c, err := NewController(Config{Min: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.cfg.Max, 3*DefaultMaxFactor; got != want {
		t.Fatalf("defaulted Max = %d, want %d", got, want)
	}
	low, err := NewController(Config{Min: 8, Max: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if low.cfg.Max != 8 {
		t.Fatalf("Max below Min not raised: %d", low.cfg.Max)
	}
}

// TestSmallGroupsDoNotMasqueradeAsInflation: a sharded query's round
// splits across shards, so some DetectBatch groups carry a handful of
// frames whose per-frame latency is inflated by the backend's fixed
// per-call overhead. Those observations must be weight-discounted, not
// treated as queueing — otherwise the quota thrashes to the floor on
// exactly the workloads adaptive sizing exists for.
func TestSmallGroupsDoNotMasqueradeAsInflation(t *testing.T) {
	const overhead, perFrame = 0.002, 0.000125 // a 2ms/call, 8kfps backend
	c, err := NewController(Config{Min: 2, Max: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	latency := func(frames int) float64 { return overhead + float64(frames)*perFrame }
	// Establish the baseline with full-quota batches while growing.
	for i := 0; i < 20; i++ {
		c.Observe(c.Quota(), latency(c.Quota()))
	}
	grown := c.Quota()
	if grown <= 2 {
		t.Fatalf("controller never grew on flat full batches: quota %d", grown)
	}
	// Now interleave full batches with unlucky 1-frame stragglers (the
	// sampler routed almost the whole round to the other shard). The
	// stragglers' per-frame latency is ~overhead — far past the inflation
	// threshold if taken at face value.
	for i := 0; i < 30; i++ {
		c.Observe(c.Quota(), latency(c.Quota()))
		c.Observe(1, latency(1))
	}
	if got := c.Quota(); got < grown/2 {
		t.Fatalf("1-frame stragglers collapsed the quota from %d to %d", grown, got)
	}
}
