// Package sizer implements feedback-controlled round sizing for the query
// engine: an AIMD (additive-increase, multiplicative-decrease) controller
// that grows a query's per-round detector quota from the engine's static
// FramesPerRound toward the backend's batch capacity while the observed
// batch latency stays flat, and shrinks it multiplicatively when latency
// inflates (queueing) or a circuit breaker opens (capacity loss).
//
// The controller is a pure state machine over the observations it is fed:
// it never reads the clock itself, so a fixed synthetic latency trace
// produces a fixed quota schedule — the property the determinism regression
// tests pin down. The signals it consumes are the ones the serving layer
// already collects: per-batch wall latency measured by the engine scheduler
// (the same quantity backend/httpbatch reports per request and
// backend/router tracks as a per-replica EWMA), and the router's
// breaker-open counter for capacity-loss events.
//
// The per-frame latency model: a batch of q frames costs roughly
// overhead + q·perFrame seconds, so per-frame latency (seconds/q) FALLS as
// the quota grows until the backend saturates, then rises as requests
// queue. AIMD probes that knee: grow by Step while the per-frame EWMA stays
// within Inflation of the best level observed, halve on inflation. The
// baseline drifts slowly toward the current EWMA so a backend that becomes
// permanently slower (fleet churn, model swap) re-anchors instead of
// pinning the controller at Min forever.
package sizer

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Config parameterizes a Controller. Min is required; everything else has
// a production-shaped default.
type Config struct {
	// Min is the quota floor — the engine's static FramesPerRound, and the
	// controller's starting point. Required (>= 1).
	Min int
	// Max is the quota ceiling, normally the backend's Hints.MaxBatch.
	// Values <= 0 select Min*DefaultMaxFactor: an unbounded backend still
	// gets a cap, because a round's picks are drawn before any of its
	// updates apply (§III-F BatchSize semantics) and unbounded rounds would
	// trade away sample efficiency, not just latency. Max below Min is
	// raised to Min.
	Max int
	// Step is the additive increase applied after each settled (flat)
	// observation window (default 1).
	Step int
	// Shrink is the multiplicative decrease factor applied on latency
	// inflation, in (0, 1) (default 0.5).
	Shrink float64
	// Inflation is the per-frame latency ratio over the baseline that
	// counts as queueing and triggers a shrink (default 1.5).
	Inflation float64
	// Settle is how many consecutive flat observations are required per
	// growth step (default 1: grow every flat round, classic AIMD).
	Settle int
	// Decay is the EWMA coefficient for the per-frame latency estimate in
	// (0, 1]; higher weighs recent batches more (default 0.4).
	Decay float64
	// Drift is the per-observation relaxation of the baseline toward the
	// current EWMA when the EWMA is above it, in [0, 1) (default 0.02).
	// Zero freezes the baseline at the best latency ever observed.
	Drift float64
}

// DefaultMaxFactor caps the quota at Min*DefaultMaxFactor when the backend
// advertises no MaxBatch.
const DefaultMaxFactor = 16

func (c Config) withDefaults() Config {
	if c.Max <= 0 {
		c.Max = c.Min * DefaultMaxFactor
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Shrink == 0 {
		c.Shrink = 0.5
	}
	if c.Inflation == 0 {
		c.Inflation = 1.5
	}
	if c.Settle == 0 {
		c.Settle = 1
	}
	if c.Decay == 0 {
		c.Decay = 0.4
	}
	if c.Drift == 0 {
		c.Drift = 0.02
	}
	return c
}

// Validate reports an error for out-of-range parameters.
func (c Config) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("sizer: Min %d below 1", c.Min)
	}
	if c.Step < 0 {
		return fmt.Errorf("sizer: negative Step %d", c.Step)
	}
	if c.Shrink < 0 || c.Shrink >= 1 {
		return fmt.Errorf("sizer: Shrink %v outside [0, 1)", c.Shrink)
	}
	if c.Inflation < 0 || (c.Inflation > 0 && c.Inflation < 1) {
		return fmt.Errorf("sizer: Inflation %v below 1", c.Inflation)
	}
	if c.Settle < 0 {
		return fmt.Errorf("sizer: negative Settle %d", c.Settle)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("sizer: Decay %v outside [0, 1]", c.Decay)
	}
	if c.Drift < 0 || c.Drift >= 1 {
		return fmt.Errorf("sizer: Drift %v outside [0, 1)", c.Drift)
	}
	return nil
}

// Counters aggregates quota adjustments across every controller sharing
// them (typically all adaptive queries of one engine). All fields are
// atomics so a stats reader never contends with the scheduler.
type Counters struct {
	// Grows and Shrinks count additive increases and multiplicative
	// decreases; CapacityLosses counts shrinks forced by a breaker opening.
	Grows, Shrinks, CapacityLosses atomic.Int64
	// Peak is the largest quota any controller reached.
	Peak atomic.Int64
}

func (c *Counters) notePeak(q int) {
	if c == nil {
		return
	}
	for {
		cur := c.Peak.Load()
		if int64(q) <= cur || c.Peak.CompareAndSwap(cur, int64(q)) {
			return
		}
	}
}

// Controller is one AIMD quota controller — per (query, backend) in the
// engine's wiring, where "backend" is the shard-affinity key that routes a
// round's DetectBatch groups. It is not safe for concurrent use; Fleet
// adds the locking the engine needs.
type Controller struct {
	cfg      Config
	counters *Counters

	quota    int
	ewma     float64 // per-frame latency EWMA (0 until the first observation)
	baseline float64 // best (lowest) per-frame level, with slow upward drift
	settled  int     // consecutive flat observations since the last change
}

// NewController builds a controller starting at cfg.Min. counters may be
// nil.
func NewController(cfg Config, counters *Counters) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, counters: counters, quota: cfg.Min}
	c.counters.notePeak(c.quota)
	return c, nil
}

// Quota returns the current per-round quota.
func (c *Controller) Quota() int { return c.quota }

// EWMASeconds returns the current per-frame latency estimate (0 before any
// observation).
func (c *Controller) EWMASeconds() float64 { return c.ewma }

// Observe feeds one successful batch observation — frames dispatched and
// the batch's wall latency in seconds — and adjusts the quota: additive
// increase after Settle consecutive flat observations, multiplicative
// decrease when the per-frame EWMA inflates past Inflation times the
// baseline. Observations with no frames are ignored.
//
// The EWMA update is weighted by frames/quota: a sub-quota batch — a
// sharded query's round split across shards leaves some groups with a
// handful of frames — overestimates per-frame latency, because the
// backend's fixed per-call overhead is amortized over fewer frames. Full
// batches carry full weight (the single-backend case is unchanged), while
// a 1-frame straggler barely moves the estimate instead of masquerading
// as queueing and halving the quota.
func (c *Controller) Observe(frames int, seconds float64) {
	if frames <= 0 || seconds < 0 {
		return
	}
	per := seconds / float64(frames)
	weight := float64(frames) / float64(c.quota)
	if weight > 1 {
		weight = 1
	}
	if c.ewma == 0 {
		c.ewma = per
	} else {
		d := c.cfg.Decay * weight
		c.ewma = d*per + (1-d)*c.ewma
	}
	switch {
	case c.baseline == 0 || c.ewma < c.baseline:
		c.baseline = c.ewma
	default:
		// Relax toward a persistently higher level so a permanently slower
		// backend re-anchors the flatness test instead of shrinking forever.
		c.baseline += c.cfg.Drift * (c.ewma - c.baseline)
	}
	if c.ewma > c.cfg.Inflation*c.baseline {
		c.shrink(false)
		return
	}
	c.settled++
	if c.settled < c.cfg.Settle || c.quota >= c.cfg.Max {
		return
	}
	c.settled = 0
	c.quota += c.cfg.Step
	if c.quota > c.cfg.Max {
		c.quota = c.cfg.Max
	}
	if c.counters != nil {
		c.counters.Grows.Add(1)
	}
	c.counters.notePeak(c.quota)
}

// CapacityLoss shrinks the quota multiplicatively in response to a
// capacity-loss event (a replica's circuit breaker opening): the fleet just
// lost a server, so the sustainable batch rate dropped whatever the latency
// EWMA still says.
func (c *Controller) CapacityLoss() { c.shrink(true) }

func (c *Controller) shrink(capacity bool) {
	c.settled = 0
	q := int(float64(c.quota) * c.cfg.Shrink)
	if q < c.cfg.Min {
		q = c.cfg.Min
	}
	if q != c.quota {
		c.quota = q
		if c.counters != nil {
			c.counters.Shrinks.Add(1)
		}
	}
	if capacity && c.counters != nil {
		c.counters.CapacityLosses.Add(1)
	}
}

// Fleet is the engine-facing controller set for one query: one Controller
// per backend key (the scheduler's shard-affinity key), created lazily on
// first observation. The query's round quota is the MINIMUM across its
// controllers — the slowest backend gates the round's wall time, so it
// gates the quota too. Fleet is safe for concurrent use: quota reads come
// from stats surfaces while the scheduler observes batches.
type Fleet struct {
	mu    sync.Mutex
	cfg   Config
	ctrs  map[uint64]*Controller
	ctr0  *Controller // fast path: the first (and usually only) key
	key0  uint64
	quota atomic.Int64 // cached min across controllers

	counters *Counters
}

// NewFleet builds a fleet. counters may be nil; it is shared with every
// controller the fleet creates.
func NewFleet(cfg Config, counters *Counters) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg, counters: counters}
	f.quota.Store(int64(cfg.Min))
	counters.notePeak(cfg.Min)
	return f, nil
}

// Quota returns the query's current per-round quota: the minimum across
// its per-backend controllers, cfg.Min before any observation.
func (f *Fleet) Quota() int { return int(f.quota.Load()) }

// Observe feeds one successful batch observation for the given backend
// key.
func (f *Fleet) Observe(key uint64, frames int, seconds float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.controller(key)
	if c == nil {
		return
	}
	c.Observe(frames, seconds)
	f.recompute()
}

// CapacityLoss shrinks every controller — the fleet cannot attribute a
// breaker-open event to one backend key, and losing a server anywhere
// reduces the capacity the round competes for.
func (f *Fleet) CapacityLoss() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ctr0 == nil {
		// No observations yet: record the event against a synthetic
		// controller so the shrink applies as soon as sizing starts... a
		// quota already at Min has nothing to shrink; just count the event.
		if f.counters != nil {
			f.counters.CapacityLosses.Add(1)
		}
		return
	}
	f.ctr0.CapacityLoss()
	for _, c := range f.ctrs {
		c.CapacityLoss()
	}
	f.recompute()
}

// controller returns (creating if needed) the controller for key. Callers
// hold f.mu.
func (f *Fleet) controller(key uint64) *Controller {
	if f.ctr0 != nil && f.key0 == key {
		return f.ctr0
	}
	if c, ok := f.ctrs[key]; ok {
		return c
	}
	c, err := NewController(f.cfg, f.counters)
	if err != nil {
		return nil
	}
	if f.ctr0 == nil {
		f.ctr0, f.key0 = c, key
		return c
	}
	if f.ctrs == nil {
		f.ctrs = make(map[uint64]*Controller)
	}
	f.ctrs[key] = c
	return c
}

// recompute refreshes the cached min quota. Callers hold f.mu.
func (f *Fleet) recompute() {
	min := f.ctr0.Quota()
	for _, c := range f.ctrs {
		if q := c.Quota(); q < min {
			min = q
		}
	}
	f.quota.Store(int64(min))
}
