// Package sizer implements feedback-controlled round sizing for the query
// engine: an AIMD (additive-increase, multiplicative-decrease) controller
// that grows a query's per-round detector quota from the engine's static
// FramesPerRound toward the backend's batch capacity while the observed
// batch latency stays flat, and shrinks it multiplicatively when latency
// inflates (queueing) or a circuit breaker opens (capacity loss).
//
// The controller is a pure state machine over the observations it is fed:
// it never reads the clock itself, so a fixed synthetic latency trace
// produces a fixed quota schedule — the property the determinism regression
// tests pin down. The signals it consumes are the ones the serving layer
// already collects: per-batch wall latency measured by the engine scheduler
// (the same quantity backend/httpbatch reports per request and
// backend/router tracks as a per-replica EWMA), and the router's
// breaker-open counter for capacity-loss events.
//
// The per-frame latency model: a batch of q frames costs roughly
// overhead + q·perFrame seconds, so per-frame latency (seconds/q) FALLS as
// the quota grows until the backend saturates, then rises as requests
// queue. AIMD probes that knee: grow by Step while the per-frame EWMA stays
// within Inflation of the best level observed, halve on inflation. The
// baseline drifts slowly toward the current EWMA so a backend that becomes
// permanently slower (fleet churn, model swap) re-anchors instead of
// pinning the controller at Min forever.
package sizer

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Config parameterizes a Controller. Min is required; everything else has
// a production-shaped default.
type Config struct {
	// Min is the quota floor — the engine's static FramesPerRound, and the
	// controller's starting point. Required (>= 1).
	Min int
	// Max is the quota ceiling, normally the backend's Hints.MaxBatch.
	// Values <= 0 select Min*DefaultMaxFactor: an unbounded backend still
	// gets a cap, because a round's picks are drawn before any of its
	// updates apply (§III-F BatchSize semantics) and unbounded rounds would
	// trade away sample efficiency, not just latency. Max below Min is
	// raised to Min.
	Max int
	// Step is the additive increase applied after each settled (flat)
	// observation window (default 1).
	Step int
	// Shrink is the multiplicative decrease factor applied on latency
	// inflation, in (0, 1) (default 0.5).
	Shrink float64
	// Inflation is the per-frame latency ratio over the baseline that
	// counts as queueing and triggers a shrink (default 1.5).
	Inflation float64
	// Settle is how many consecutive flat observations are required per
	// growth step (default 1: grow every flat round, classic AIMD).
	Settle int
	// Decay is the EWMA coefficient for the per-frame latency estimate in
	// (0, 1]; higher weighs recent batches more (default 0.4).
	Decay float64
	// Drift is the per-observation relaxation of the baseline toward the
	// current EWMA when the EWMA is above it, in [0, 1) (default 0.02).
	// Zero freezes the baseline at the best latency ever observed.
	Drift float64
}

// DefaultMaxFactor caps the quota at Min*DefaultMaxFactor when the backend
// advertises no MaxBatch.
const DefaultMaxFactor = 16

func (c Config) withDefaults() Config {
	if c.Max <= 0 {
		c.Max = c.Min * DefaultMaxFactor
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Shrink == 0 {
		c.Shrink = 0.5
	}
	if c.Inflation == 0 {
		c.Inflation = 1.5
	}
	if c.Settle == 0 {
		c.Settle = 1
	}
	if c.Decay == 0 {
		c.Decay = 0.4
	}
	if c.Drift == 0 {
		c.Drift = 0.02
	}
	return c
}

// Validate reports an error for out-of-range parameters.
func (c Config) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("sizer: Min %d below 1", c.Min)
	}
	if c.Step < 0 {
		return fmt.Errorf("sizer: negative Step %d", c.Step)
	}
	if c.Shrink < 0 || c.Shrink >= 1 {
		return fmt.Errorf("sizer: Shrink %v outside [0, 1)", c.Shrink)
	}
	if c.Inflation < 0 || (c.Inflation > 0 && c.Inflation < 1) {
		return fmt.Errorf("sizer: Inflation %v below 1", c.Inflation)
	}
	if c.Settle < 0 {
		return fmt.Errorf("sizer: negative Settle %d", c.Settle)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("sizer: Decay %v outside [0, 1]", c.Decay)
	}
	if c.Drift < 0 || c.Drift >= 1 {
		return fmt.Errorf("sizer: Drift %v outside [0, 1)", c.Drift)
	}
	return nil
}

// Counters aggregates quota adjustments across every controller sharing
// them (typically all adaptive queries of one engine). All fields are
// atomics so a stats reader never contends with the scheduler.
type Counters struct {
	// Grows and Shrinks count additive increases and multiplicative
	// decreases; CapacityLosses counts shrinks forced by a breaker opening.
	Grows, Shrinks, CapacityLosses atomic.Int64
	// Peak is the largest quota any controller reached.
	Peak atomic.Int64
}

func (c *Counters) notePeak(q int) {
	if c == nil {
		return
	}
	for {
		cur := c.Peak.Load()
		if int64(q) <= cur || c.Peak.CompareAndSwap(cur, int64(q)) {
			return
		}
	}
}

// Controller is one AIMD quota controller — per (query, backend) in the
// engine's wiring, where "backend" is the shard-affinity key that routes a
// round's DetectBatch groups. It is not safe for concurrent use; Fleet
// adds the locking the engine needs.
type Controller struct {
	cfg      Config
	counters *Counters

	quota    int
	ewma     float64 // per-frame latency EWMA (0 until the first observation)
	baseline float64 // best (lowest) per-frame level, with slow upward drift
	settled  int     // consecutive flat observations since the last change
}

// NewController builds a controller starting at cfg.Min. counters may be
// nil.
func NewController(cfg Config, counters *Counters) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, counters: counters, quota: cfg.Min}
	c.counters.notePeak(c.quota)
	return c, nil
}

// Quota returns the current per-round quota.
func (c *Controller) Quota() int { return c.quota }

// EWMASeconds returns the current per-frame latency estimate (0 before any
// observation).
func (c *Controller) EWMASeconds() float64 { return c.ewma }

// Observe feeds one successful batch observation — frames dispatched and
// the batch's wall latency in seconds — and adjusts the quota: additive
// increase after Settle consecutive flat observations, multiplicative
// decrease when the per-frame EWMA inflates past Inflation times the
// baseline. Observations with no frames are ignored.
//
// The EWMA update is weighted by frames/quota: a sub-quota batch — a
// sharded query's round split across shards leaves some groups with a
// handful of frames — overestimates per-frame latency, because the
// backend's fixed per-call overhead is amortized over fewer frames. Full
// batches carry full weight (the single-backend case is unchanged), while
// a 1-frame straggler barely moves the estimate instead of masquerading
// as queueing and halving the quota.
func (c *Controller) Observe(frames int, seconds float64) {
	if frames <= 0 || seconds < 0 {
		return
	}
	per := seconds / float64(frames)
	weight := float64(frames) / float64(c.quota)
	if weight > 1 {
		weight = 1
	}
	if c.ewma == 0 {
		c.ewma = per
	} else {
		d := c.cfg.Decay * weight
		c.ewma = d*per + (1-d)*c.ewma
	}
	switch {
	case c.baseline == 0 || c.ewma < c.baseline:
		c.baseline = c.ewma
	default:
		// Relax toward a persistently higher level so a permanently slower
		// backend re-anchors the flatness test instead of shrinking forever.
		c.baseline += c.cfg.Drift * (c.ewma - c.baseline)
	}
	if c.ewma > c.cfg.Inflation*c.baseline {
		c.shrink(false)
		return
	}
	c.settled++
	if c.settled < c.cfg.Settle || c.quota >= c.cfg.Max {
		return
	}
	c.settled = 0
	c.quota += c.cfg.Step
	if c.quota > c.cfg.Max {
		c.quota = c.cfg.Max
	}
	if c.counters != nil {
		c.counters.Grows.Add(1)
	}
	c.counters.notePeak(c.quota)
}

// CapacityLoss shrinks the quota multiplicatively in response to a
// capacity-loss event (a replica's circuit breaker opening): the fleet just
// lost a server, so the sustainable batch rate dropped whatever the latency
// EWMA still says.
func (c *Controller) CapacityLoss() { c.shrink(true) }

func (c *Controller) shrink(capacity bool) {
	c.settled = 0
	q := int(float64(c.quota) * c.cfg.Shrink)
	if q < c.cfg.Min {
		q = c.cfg.Min
	}
	if q != c.quota {
		c.quota = q
		if c.counters != nil {
			c.counters.Shrinks.Add(1)
		}
	}
	if capacity && c.counters != nil {
		c.counters.CapacityLosses.Add(1)
	}
}

// ReplicaAll is the replica index for observations and capacity-loss
// events that cannot be attributed to one replica of a backend key — the
// single-controller layout every key has until SeedReplicas declares its
// fleet shape.
const ReplicaAll = -1

// keyCtrs is one backend key's controller set: a single unattributed
// (ReplicaAll) controller by default, or one controller per replica once
// SeedReplicas declares the key fronts a heterogeneous fleet. The slices
// run parallel: reps[i] is the replica index ctrs[i] controls.
type keyCtrs struct {
	key     uint64
	reps    []int
	ctrs    []*Controller
	weights []float64 // static capacity shares (nil = single-controller)
	wsum    float64
	shares  []int     // Observe split scratch
	fracs   []float64 // largest-remainder scratch
}

// ctrFor returns the controller for a replica index, nil when absent.
func (kc *keyCtrs) ctrFor(replica int) *Controller {
	for i, r := range kc.reps {
		if r == replica {
			return kc.ctrs[i]
		}
	}
	return nil
}

// quotaSum is the key's round quota: the sum across its replica
// controllers (a scattered batch is served by all of them at once),
// capped at the fleet ceiling.
func (kc *keyCtrs) quotaSum(max int) int {
	total := 0
	for _, c := range kc.ctrs {
		total += c.Quota()
	}
	if total > max {
		total = max
	}
	return total
}

// split distributes frames across the key's replica controllers
// proportional to the STATIC seed weights by largest remainder (ties to
// the lowest index — deterministic). The static weights mirror how the
// router actually slices a scattered batch; splitting by live quotas
// instead would spiral (a shrunken controller's smaller share reads as
// higher per-frame latency, shrinking it further). Callers hold the
// fleet lock; the returned slice is kc scratch.
func (kc *keyCtrs) split(frames int) []int {
	n := len(kc.weights)
	if kc.shares == nil {
		kc.shares = make([]int, n)
		kc.fracs = make([]float64, n)
	}
	assigned := 0
	for i, w := range kc.weights {
		ideal := float64(frames) * w / kc.wsum
		s := int(ideal)
		kc.shares[i] = s
		kc.fracs[i] = ideal - float64(s)
		assigned += s
	}
	for assigned < frames {
		best := 0
		for i := 1; i < n; i++ {
			if kc.fracs[i] > kc.fracs[best] {
				best = i
			}
		}
		kc.shares[best]++
		kc.fracs[best]--
		assigned++
	}
	return kc.shares
}

// Fleet is the engine-facing controller set for one query: one controller
// per (backend key, replica), created lazily on first observation —
// per-key only (ReplicaAll) until SeedReplicas declares a key's replica
// fleet. The query's round quota is the MINIMUM across its keys — the
// slowest backend gates the round's wall time, so it gates the quota too
// — where a seeded key's own quota is the SUM across its replica
// controllers. Fleet is safe for concurrent use: quota reads come from
// stats surfaces while the scheduler observes batches.
type Fleet struct {
	mu    sync.Mutex
	cfg   Config
	keys  []*keyCtrs   // tiny (one per shard-affinity key): linear scan
	quota atomic.Int64 // cached min across keys

	counters *Counters
}

// NewFleet builds a fleet. counters may be nil; it is shared with every
// controller the fleet creates.
func NewFleet(cfg Config, counters *Counters) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg, counters: counters}
	f.quota.Store(int64(cfg.Min))
	counters.notePeak(cfg.Min)
	return f, nil
}

// Quota returns the query's current per-round quota: the minimum across
// its per-backend-key quotas, cfg.Min before any observation.
func (f *Fleet) Quota() int { return int(f.quota.Load()) }

// SeedReplicas declares that key's backend fronts a fleet of
// len(weights) replicas with the given static capacity shares (the
// router's scatter split), so the key learns one AIMD quota per replica:
// each controller starts from its proportional share of cfg.Min and may
// grow to its share of cfg.Max, and CapacityLoss can shrink one
// replica's controller without touching its siblings. Idempotent; a
// no-op for fewer than two replicas or a key that already has
// controllers.
func (f *Fleet) SeedReplicas(key uint64, weights []float64) {
	if len(weights) < 2 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if kc := f.findKey(key); kc != nil {
		return
	}
	n := len(weights)
	ws := make([]float64, n)
	var wsum float64
	for i, w := range weights {
		if w <= 0 {
			w = 1
		}
		ws[i] = w
		wsum += w
	}
	kc := &keyCtrs{key: key, weights: ws, wsum: wsum}
	// Proportional floors (each at least 1 so every controller is a
	// valid AIMD instance), remainders to the largest fractional shares.
	mins := make([]int, n)
	fracs := make([]float64, n)
	assigned := 0
	for i, w := range ws {
		ideal := float64(f.cfg.Min) * w / wsum
		s := int(ideal)
		if s < 1 {
			s = 1
		}
		mins[i] = s
		fracs[i] = ideal - float64(s)
		assigned += s
	}
	for assigned < f.cfg.Min {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		mins[best]++
		fracs[best]--
		assigned++
	}
	for i, w := range ws {
		cfg := f.cfg
		cfg.Min = mins[i]
		cfg.Max = int(float64(f.cfg.Max)*w/wsum + 0.999999)
		if cfg.Max < cfg.Min {
			cfg.Max = cfg.Min
		}
		c, err := NewController(cfg, f.counters)
		if err != nil {
			return // cannot happen: derived from a validated config
		}
		kc.reps = append(kc.reps, i)
		kc.ctrs = append(kc.ctrs, c)
	}
	f.keys = append(f.keys, kc)
	f.recompute()
}

// Observe feeds one successful batch observation for the given backend
// key. For a seeded key the frames are split across the replica
// controllers by the static seed weights — each replica served its share
// of the scattered batch within the same wall time.
func (f *Fleet) Observe(key uint64, frames int, seconds float64) {
	if frames <= 0 || seconds < 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	kc := f.keyFor(key)
	if kc == nil {
		return
	}
	if len(kc.weights) == 0 {
		kc.ctrs[0].Observe(frames, seconds)
	} else {
		shares := kc.split(frames)
		for i, s := range shares {
			if s > 0 {
				kc.ctrs[i].Observe(s, seconds)
			}
		}
	}
	f.recompute()
}

// CapacityLoss shrinks the controller for the given (key, replica) — the
// signalled replica's breaker opened, so only its share of the round
// quota is unsustainable; siblings (and other keys) keep their learned
// quotas. Events for a key without per-replica controllers shrink the
// key's unattributed controller; events for an unknown key are counted
// but shrink nothing (there is no quota to shrink yet).
func (f *Fleet) CapacityLoss(key uint64, replica int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if kc := f.findKey(key); kc != nil {
		c := kc.ctrFor(replica)
		if c == nil {
			c = kc.ctrFor(ReplicaAll)
		}
		if c == nil && len(kc.ctrs) > 0 {
			c = kc.ctrs[0]
		}
		if c != nil {
			c.CapacityLoss()
			f.recompute()
			return
		}
	}
	if f.counters != nil {
		f.counters.CapacityLosses.Add(1)
	}
}

// CapacityLossAll shrinks every controller — for capacity-loss events
// that cannot be attributed to one backend key or replica: losing a
// server somewhere reduces the capacity every round competes for.
func (f *Fleet) CapacityLossAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.keys) == 0 {
		// No observations yet: a quota already at Min has nothing to
		// shrink; just count the event.
		if f.counters != nil {
			f.counters.CapacityLosses.Add(1)
		}
		return
	}
	for _, kc := range f.keys {
		for _, c := range kc.ctrs {
			c.CapacityLoss()
		}
	}
	f.recompute()
}

// findKey returns the key's controller set, nil when absent. Callers
// hold f.mu.
func (f *Fleet) findKey(key uint64) *keyCtrs {
	for _, kc := range f.keys {
		if kc.key == key {
			return kc
		}
	}
	return nil
}

// keyFor returns (creating a single-controller set if needed) the
// controller set for key. Callers hold f.mu.
func (f *Fleet) keyFor(key uint64) *keyCtrs {
	if kc := f.findKey(key); kc != nil {
		return kc
	}
	c, err := NewController(f.cfg, f.counters)
	if err != nil {
		return nil
	}
	kc := &keyCtrs{key: key, reps: []int{ReplicaAll}, ctrs: []*Controller{c}}
	f.keys = append(f.keys, kc)
	return kc
}

// recompute refreshes the cached min-across-keys quota. Callers hold
// f.mu.
func (f *Fleet) recompute() {
	min := f.cfg.Min
	for i, kc := range f.keys {
		q := kc.quotaSum(f.cfg.Max)
		f.counters.notePeak(q)
		if i == 0 || q < min {
			min = q
		}
	}
	f.quota.Store(int64(min))
}
