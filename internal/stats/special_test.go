package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/exsample/exsample/internal/xrand"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0.
	if got := GammaP(3, 0); got != 0 {
		t.Errorf("GammaP(3, 0) = %v", got)
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPMonotonic(t *testing.T) {
	f := func(rawA, rawX1, rawX2 uint16) bool {
		a := float64(rawA%1000)/100 + 0.01
		x1 := float64(rawX1) / 100
		x2 := float64(rawX2) / 100
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1, p2 := GammaP(a, x1), GammaP(a, x2)
		return p1 <= p2+1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{0.1, 0.5}, {2, 3}, {50, 40}, {50, 60}} {
		if got := GammaP(c.a, c.x) + GammaQ(c.a, c.x); math.Abs(got-1) > 1e-10 {
			t.Errorf("P+Q at (%v,%v) = %v", c.a, c.x, got)
		}
	}
}

func TestGammaPPanics(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{0, 1}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GammaP(%v,%v) did not panic", c.a, c.x)
				}
			}()
			GammaP(c.a, c.x)
		}()
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	for _, c := range []struct{ alpha, beta float64 }{{0.1, 1}, {1, 1}, {5, 2}, {100, 50}} {
		for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			x, err := GammaQuantile(p, c.alpha, c.beta)
			if err != nil {
				t.Fatalf("GammaQuantile(%v, %v, %v): %v", p, c.alpha, c.beta, err)
			}
			got := GammaP(c.alpha, c.beta*x)
			if math.Abs(got-p) > 1e-8 {
				t.Errorf("round trip (%v,%v) p=%v: CDF(quantile) = %v", c.alpha, c.beta, p, got)
			}
		}
	}
}

func TestGammaQuantileMatchesSampling(t *testing.T) {
	// The 0.9 quantile should exceed ~90% of random draws.
	g := xrand.New(5)
	alpha, beta := 2.5, 3.0
	q, err := GammaQuantile(0.9, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Gamma(alpha, beta) <= q {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("fraction below 0.9-quantile = %v", frac)
	}
}

func TestGammaQuantileErrors(t *testing.T) {
	for _, c := range []struct{ p, a, b float64 }{{0, 1, 1}, {1, 1, 1}, {0.5, 0, 1}, {0.5, 1, 0}} {
		if _, err := GammaQuantile(c.p, c.a, c.b); err == nil {
			t.Errorf("GammaQuantile(%v,%v,%v) accepted", c.p, c.a, c.b)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{3, 1, 2, 5, 4}
	for _, c := range []struct{ q, want float64 }{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}} {
		got, err := Percentile(vals, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if vals[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("interpolated percentile = %v", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := Percentile([]float64{1}, -0.1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := Percentile([]float64{1}, 1.1); err == nil {
		t.Error("level > 1 accepted")
	}
}

func TestMedianSingleValue(t *testing.T) {
	got, err := Median([]float64{7})
	if err != nil || got != 7 {
		t.Fatalf("Median([7]) = %v, %v", got, err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v", got)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero value accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestMeanStdDev(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	sd, err := StdDev([]float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(sd-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", sd, want)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) accepted")
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) accepted")
	}
}
