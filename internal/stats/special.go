// Package stats provides the special functions and summary statistics the
// reproduction needs: the regularized incomplete gamma function (for
// Gamma-distribution CDFs and quantiles used by the Bayes-UCB policy,
// §III-C), and percentile / geometric-mean helpers used by the evaluation
// (§V reports medians, 25–75% bands and geometric-mean savings).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// GammaP returns the regularized lower incomplete gamma function P(a, x) =
// γ(a, x) / Γ(a), the CDF of a Gamma(a, 1) random variable evaluated at x.
// It uses the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes §6.2).
func GammaP(a, x float64) float64 {
	if a <= 0 {
		panic("stats: GammaP requires a > 0")
	}
	if x < 0 {
		panic("stats: GammaP requires x >= 0")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 { return 1 - GammaP(a, x) }

const (
	gammaIterMax = 500
	gammaEps     = 3e-14
)

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaIterMax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= gammaIterMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaQuantile returns x such that P(alpha, beta*x) = p for a
// Gamma(alpha, beta) distribution in the shape/rate parameterization. It
// inverts the CDF by bisection; p must be in (0, 1).
func GammaQuantile(p, alpha, beta float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile level %v outside (0,1)", p)
	}
	if alpha <= 0 || beta <= 0 {
		return 0, fmt.Errorf("stats: Gamma parameters must be positive (alpha=%v beta=%v)", alpha, beta)
	}
	// Bracket the root in Gamma(alpha, 1) space.
	lo, hi := 0.0, alpha+1
	for GammaP(alpha, hi) < p {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("stats: quantile bracket overflow (p=%v alpha=%v)", p, alpha)
		}
	}
	// Bisect to relative precision: quantiles at small alpha and small p can
	// be far below 1 (e.g. ~1e-21 for alpha=0.1, p=0.01), so an absolute
	// tolerance would stop long before the root.
	for i := 0; i < 400; i++ {
		mid := (lo + hi) / 2
		if GammaP(alpha, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14*hi {
			break
		}
	}
	return (lo + hi) / 2 / beta, nil
}

// Percentile returns the q-th percentile (q in [0, 1]) of the values using
// linear interpolation between order statistics. The input is not modified.
func Percentile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: percentile level %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(values []float64) (float64, error) { return Percentile(values, 0.5) }

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	sum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %v", v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values))), nil
}

// Mean returns the arithmetic mean.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: mean of empty slice")
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) (float64, error) {
	m, err := Mean(values)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values))), nil
}
