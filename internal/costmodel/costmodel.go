// Package costmodel converts frame counts into the wall-clock times the
// paper reports. §V-B fixes the two throughputs that matter:
//
//   - proxy scoring scans the full dataset at ~100 frames/second
//     (bound by io+decode), and
//   - sampling methods process frames at ~20 frames/second
//     (bound by the object detector).
//
// Table I is defined entirely in these units; this package also formats
// durations in the paper's "1m37s" / "9h50m" style so the regenerated table
// is directly comparable.
package costmodel

import (
	"fmt"
	"math"
	"time"
)

// Model holds the system throughputs.
type Model struct {
	// DetectFPS is the end-to-end frames/second of the sampling path
	// (random read + decode + detector inference).
	DetectFPS float64
	// ScanFPS is the frames/second of the sequential proxy-scoring scan.
	ScanFPS float64
}

// Default returns the paper's measured rates (§V-B).
func Default() Model { return Model{DetectFPS: 20, ScanFPS: 100} }

// Validate reports an error for non-positive rates.
func (m Model) Validate() error {
	if m.DetectFPS <= 0 {
		return fmt.Errorf("costmodel: DetectFPS must be positive, got %v", m.DetectFPS)
	}
	if m.ScanFPS <= 0 {
		return fmt.Errorf("costmodel: ScanFPS must be positive, got %v", m.ScanFPS)
	}
	return nil
}

// DetectSeconds returns the time to sample and detect n frames.
func (m Model) DetectSeconds(n int64) float64 { return float64(n) / m.DetectFPS }

// ScanSeconds returns the time for the proxy model to score an entire
// repository of n frames.
func (m Model) ScanSeconds(n int64) float64 { return float64(n) / m.ScanFPS }

// FramesInTime returns how many frames the sampling path can process in the
// given seconds (Table I compares "how far does ExSample get while the proxy
// is still scanning").
func (m Model) FramesInTime(seconds float64) int64 {
	if seconds <= 0 {
		return 0
	}
	return int64(seconds * m.DetectFPS)
}

// FormatDuration renders seconds in the paper's compact style: "18s",
// "1m37s", "41m", "9h50m", "2h58m". Minutes-only when seconds round to 0;
// hours+minutes above one hour.
func FormatDuration(seconds float64) string {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return "?"
	}
	d := time.Duration(math.Round(seconds)) * time.Second
	h := int(d.Hours())
	mm := int(d.Minutes()) % 60
	ss := int(d.Seconds()) % 60
	switch {
	case h > 0 && mm > 0:
		return fmt.Sprintf("%dh%dm", h, mm)
	case h > 0:
		return fmt.Sprintf("%dh", h)
	case mm > 0 && ss > 0:
		return fmt.Sprintf("%dm%ds", mm, ss)
	case mm > 0:
		return fmt.Sprintf("%dm", mm)
	default:
		return fmt.Sprintf("%ds", ss)
	}
}

// GPUDollarsPerHour is the price context from the paper's introduction (the
// cheapest AWS g4 instance in 2021).
const GPUDollarsPerHour = 0.50

// DollarCost estimates the GPU rental cost of a query.
func DollarCost(seconds float64) float64 {
	return seconds / 3600 * GPUDollarsPerHour
}
