package costmodel

import (
	"math"
	"testing"
)

func TestDefaultRates(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.DetectFPS != 20 || m.ScanFPS != 100 {
		t.Fatalf("default = %+v", m)
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{DetectFPS: 0, ScanFPS: 100}).Validate(); err == nil {
		t.Error("zero DetectFPS accepted")
	}
	if err := (Model{DetectFPS: 20, ScanFPS: -1}).Validate(); err == nil {
		t.Error("negative ScanFPS accepted")
	}
}

func TestSeconds(t *testing.T) {
	m := Default()
	if got := m.DetectSeconds(200); got != 10 {
		t.Errorf("DetectSeconds(200) = %v", got)
	}
	if got := m.ScanSeconds(1000); got != 10 {
		t.Errorf("ScanSeconds(1000) = %v", got)
	}
}

func TestFramesInTime(t *testing.T) {
	m := Default()
	if got := m.FramesInTime(10); got != 200 {
		t.Errorf("FramesInTime(10) = %d", got)
	}
	if got := m.FramesInTime(0); got != 0 {
		t.Errorf("FramesInTime(0) = %d", got)
	}
	if got := m.FramesInTime(-5); got != 0 {
		t.Errorf("FramesInTime(-5) = %d", got)
	}
}

func TestScanVsDetectConsistency(t *testing.T) {
	// The paper's core Table I argument: scanning 1.1M frames at 100 fps
	// takes ~3h; in that time the detector path processes 5x fewer frames.
	m := Default()
	scan := m.ScanSeconds(1_100_000)
	frames := m.FramesInTime(scan)
	if frames != 220_000 {
		t.Fatalf("frames processable during scan = %d", frames)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{18, "18s"},
		{0, "0s"},
		{97, "1m37s"},
		{60, "1m"},
		{41 * 60, "41m"},
		{3600, "1h"},
		{9*3600 + 50*60, "9h50m"},
		{2*3600 + 58*60, "2h58m"},
		{3600 + 0.4, "1h"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.sec); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
	if got := FormatDuration(-1); got != "?" {
		t.Errorf("FormatDuration(-1) = %q", got)
	}
	if got := FormatDuration(math.NaN()); got != "?" {
		t.Errorf("FormatDuration(NaN) = %q", got)
	}
}

func TestDollarCost(t *testing.T) {
	// 3000 GPU-hours at $0.50/h = $1500, the paper's motivating number.
	if got := DollarCost(3000 * 3600); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("DollarCost = %v", got)
	}
}
