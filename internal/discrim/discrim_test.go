package discrim

import (
	"testing"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

func inst(id int, class string, start, end int64) track.Instance {
	return track.Instance{
		ID: id, Class: class, Start: start, End: end,
		StartBox: geom.Rect(100, 100, 50, 80),
		EndBox:   geom.Rect(400, 300, 60, 90),
	}
}

// separated returns instances whose boxes never overlap, so IoU matching is
// unambiguous.
func separated(id int, class string, start, end int64, lane float64) track.Instance {
	return track.Instance{
		ID: id, Class: class, Start: start, End: end,
		StartBox: geom.Rect(100, lane*200, 50, 80),
		EndBox:   geom.Rect(400, lane*200, 60, 90),
	}
}

func setup(t *testing.T, instances []track.Instance, numFrames int64, coverage float64) (*track.Index, *Discriminator, *detect.Sim) {
	t.Helper()
	idx, err := track.NewIndex(instances, numFrames, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewTruthExtender(idx, coverage)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(ext, 0)
	if err != nil {
		t.Fatal(err)
	}
	det, err := detect.Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	return idx, d, det
}

func TestFirstSightingIsNew(t *testing.T) {
	_, d, det := setup(t, []track.Instance{inst(0, "car", 0, 99)}, 1000, 1.0)
	d0, d1 := d.Observe(50, det.Detect(50))
	if len(d0) != 1 || len(d1) != 0 {
		t.Fatalf("d0=%d d1=%d", len(d0), len(d1))
	}
	if d.NumResults() != 1 {
		t.Fatalf("NumResults = %d", d.NumResults())
	}
}

func TestSecondSightingIsD1ThirdIsNeither(t *testing.T) {
	_, d, det := setup(t, []track.Instance{inst(0, "car", 0, 99)}, 1000, 1.0)
	d.Observe(50, det.Detect(50))

	// Second sighting in a different frame: same object, counts as d1.
	d0, d1 := d.Observe(80, det.Detect(80))
	if len(d0) != 0 || len(d1) != 1 {
		t.Fatalf("second sighting: d0=%d d1=%d", len(d0), len(d1))
	}

	// Third sighting: contributes to neither set.
	d0, d1 = d.Observe(20, det.Detect(20))
	if len(d0) != 0 || len(d1) != 0 {
		t.Fatalf("third sighting: d0=%d d1=%d", len(d0), len(d1))
	}
	if d.NumResults() != 1 {
		t.Fatalf("NumResults = %d", d.NumResults())
	}
}

func TestDistinctObjectsCountSeparately(t *testing.T) {
	instances := []track.Instance{
		separated(0, "car", 0, 99, 0),
		separated(1, "car", 200, 299, 1),
		separated(2, "car", 0, 99, 2),
	}
	_, d, det := setup(t, instances, 1000, 1.0)
	d0, _ := d.Observe(50, det.Detect(50)) // instances 0 and 2 visible
	if len(d0) != 2 {
		t.Fatalf("frame 50: d0=%d", len(d0))
	}
	d0, _ = d.Observe(250, det.Detect(250)) // instance 1
	if len(d0) != 1 {
		t.Fatalf("frame 250: d0=%d", len(d0))
	}
	if d.NumResults() != 3 {
		t.Fatalf("NumResults = %d", d.NumResults())
	}
}

func TestClassMismatchDoesNotMatch(t *testing.T) {
	// Same spatial track, different classes: two distinct results.
	a := inst(0, "car", 0, 99)
	b := inst(1, "bus", 0, 99)
	idx, err := track.NewIndex([]track.Instance{a, b}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewTruthExtender(idx, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(ext, 0)
	if err != nil {
		t.Fatal(err)
	}
	det, err := detect.Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := d.Observe(50, det.Detect(50))
	if len(d0) != 2 {
		t.Fatalf("d0=%d, want both classes new", len(d0))
	}
}

func TestPartialCoverageSplitsLongTracks(t *testing.T) {
	// With coverage 0.2, a detection at frame 500 of a [0,999] instance
	// yields a predicted track of ~[400,600]; a detection at frame 0 is far
	// outside and registers as a second "distinct" object (tracker lost it).
	_, d, det := setup(t, []track.Instance{inst(0, "car", 0, 999)}, 1000, 0.2)
	d.Observe(500, det.Detect(500))
	d0, _ := d.Observe(0, det.Detect(0))
	if len(d0) != 1 {
		t.Fatalf("far detection: d0=%d, want new object under partial coverage", len(d0))
	}
	if d.NumResults() != 2 {
		t.Fatalf("NumResults = %d", d.NumResults())
	}
}

func TestFalsePositivesGetSingleFrameTracks(t *testing.T) {
	idx, err := track.NewIndex(nil, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewTruthExtender(idx, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tr := ext.Extend(track.Detection{Frame: 77, Class: "car", Box: geom.Rect(0, 0, 10, 10), TruthID: -1})
	if tr.Start != 77 || tr.End != 77 {
		t.Fatalf("FP track = [%d, %d]", tr.Start, tr.End)
	}
}

func TestGetMatchesDoesNotMutate(t *testing.T) {
	_, d, det := setup(t, []track.Instance{inst(0, "car", 0, 99)}, 1000, 1.0)
	dets := det.Detect(50)
	d0, _ := d.GetMatches(50, dets)
	if len(d0) != 1 {
		t.Fatalf("d0=%d", len(d0))
	}
	if d.NumResults() != 0 {
		t.Fatal("GetMatches mutated state")
	}
	// Repeated classification gives the same answer until Add.
	d0, _ = d.GetMatches(50, dets)
	if len(d0) != 1 {
		t.Fatalf("repeat d0=%d", len(d0))
	}
	d.Add(50, dets)
	if d.NumResults() != 1 {
		t.Fatalf("NumResults after Add = %d", d.NumResults())
	}
	d0, d1 := d.GetMatches(80, det.Detect(80))
	if len(d0) != 0 || len(d1) != 1 {
		t.Fatalf("after Add: d0=%d d1=%d", len(d0), len(d1))
	}
}

func TestAddReturnsCreatedObjects(t *testing.T) {
	_, d, det := setup(t, []track.Instance{inst(0, "car", 0, 99)}, 1000, 1.0)
	created := d.Add(50, det.Detect(50))
	if len(created) != 1 || created[0].ID != 0 || created[0].Sightings != 1 {
		t.Fatalf("created = %+v", created)
	}
	created = d.Add(80, det.Detect(80))
	if len(created) != 0 {
		t.Fatalf("second Add created %d objects", len(created))
	}
	if d.Objects()[0].Sightings != 2 {
		t.Fatalf("Sightings = %d", d.Objects()[0].Sightings)
	}
}

func TestDuplicateDetectionsWithinFrame(t *testing.T) {
	// Two identical detections of a new object in one frame: only one new
	// object is registered by Observe, the second becomes d1.
	_, d, _ := setup(t, []track.Instance{inst(0, "car", 0, 99)}, 1000, 1.0)
	det1 := track.Detection{Frame: 50, Class: "car", Box: inst(0, "car", 0, 99).BoxAt(50), TruthID: 0}
	d0, d1 := d.Observe(50, []track.Detection{det1, det1})
	if len(d0) != 1 || len(d1) != 1 {
		t.Fatalf("d0=%d d1=%d", len(d0), len(d1))
	}
	if d.NumResults() != 1 {
		t.Fatalf("NumResults = %d", d.NumResults())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0.5); err == nil {
		t.Error("nil extender accepted")
	}
	if _, err := New(FrameExtender{}, 1.5); err == nil {
		t.Error("IoU threshold > 1 accepted")
	}
}

func TestNewTruthExtenderValidation(t *testing.T) {
	idx, err := track.NewIndex(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cov := range []float64{0, -0.5, 1.5} {
		if _, err := NewTruthExtender(idx, cov); err == nil {
			t.Errorf("coverage %v accepted", cov)
		}
	}
}

func TestFrameExtender(t *testing.T) {
	det1 := track.Detection{Frame: 5, Class: "car", Box: geom.Rect(0, 0, 10, 10)}
	tr := FrameExtender{}.Extend(det1)
	if tr.Start != 5 || tr.End != 5 || tr.StartBox != det1.Box {
		t.Fatalf("track = %+v", tr)
	}
}

func TestPredictedTrackBoxAtClamps(t *testing.T) {
	p := PredictedTrack{Start: 10, End: 20, StartBox: geom.Rect(0, 0, 10, 10), EndBox: geom.Rect(100, 0, 10, 10)}
	if b := p.BoxAt(5); b != p.StartBox {
		t.Errorf("BoxAt(before) = %+v", b)
	}
	if b := p.BoxAt(25); b != p.EndBox {
		t.Errorf("BoxAt(after) = %+v", b)
	}
	mid := p.BoxAt(15)
	if mid.X1 != 50 {
		t.Errorf("BoxAt(mid) = %+v", mid)
	}
	// Degenerate single-frame track.
	q := PredictedTrack{Start: 3, End: 3, StartBox: geom.Rect(1, 1, 2, 2), EndBox: geom.Rect(9, 9, 2, 2)}
	if b := q.BoxAt(3); b != q.StartBox {
		t.Errorf("degenerate BoxAt = %+v", b)
	}
}

// N1 bookkeeping invariant: after any detection sequence,
// sum(d0) - sum(d1) equals the number of objects seen exactly once.
func TestN1Invariant(t *testing.T) {
	instances := []track.Instance{
		separated(0, "car", 0, 500, 0),
		separated(1, "car", 100, 700, 1),
		separated(2, "car", 300, 900, 2),
		separated(3, "car", 50, 60, 3),
	}
	idx, err := track.NewIndex(instances, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewTruthExtender(idx, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(ext, 0)
	if err != nil {
		t.Fatal(err)
	}
	detector, err := detect.Perfect(idx)
	if err != nil {
		t.Fatal(err)
	}
	n1 := 0
	for _, frame := range []int64{55, 350, 350, 120, 650, 820, 55, 10, 10} {
		d0, d1 := d.Observe(frame, detector.Detect(frame))
		n1 += len(d0) - len(d1)
		// Recompute from object sightings.
		want := 0
		for _, obj := range d.Objects() {
			if obj.Sightings == 1 {
				want++
			}
		}
		if n1 != want {
			t.Fatalf("after frame %d: N1 accumulator=%d, objects-seen-once=%d", frame, n1, want)
		}
	}
}
