package discrim

import (
	"fmt"

	"github.com/exsample/exsample/internal/track"
)

// TruthExtender simulates the paper's SORT-style forward/backward tracker
// over ground truth. For a detection of a real instance, the tracker follows
// the object up to coverage×duration frames in each direction before losing
// it: coverage 1.0 always recovers the full true interval (the paper's
// idealized tracker), while e.g. 0.25 covers at most half the extent around
// the detection. False positives (TruthID < 0) produce single-frame tracks,
// so a recurring spurious box cannot suppress real results elsewhere.
type TruthExtender struct {
	idx      *track.Index
	byID     map[int]track.Instance
	coverage float64
}

// NewTruthExtender builds an extender over the ground-truth index. coverage
// must be in (0, 1]; 1 reproduces the paper's assumption that the tracker
// recovers the object's full visible extent.
func NewTruthExtender(idx *track.Index, coverage float64) (*TruthExtender, error) {
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("discrim: coverage %v outside (0, 1]", coverage)
	}
	byID := make(map[int]track.Instance, len(idx.Instances()))
	for _, in := range idx.Instances() {
		byID[in.ID] = in
	}
	return &TruthExtender{idx: idx, byID: byID, coverage: coverage}, nil
}

// Extend returns the predicted track for a detection.
func (e *TruthExtender) Extend(det track.Detection) PredictedTrack {
	in, ok := e.byID[det.TruthID]
	if det.TruthID < 0 || !ok {
		// False positive: the tracker cannot follow anything.
		return PredictedTrack{Start: det.Frame, End: det.Frame, StartBox: det.Box, EndBox: det.Box}
	}
	dur := in.Duration()
	reach := int64(float64(dur) * e.coverage)
	start := det.Frame - reach
	if start < in.Start {
		start = in.Start
	}
	end := det.Frame + reach
	if end > in.End {
		end = in.End
	}
	return PredictedTrack{
		Start:    start,
		End:      end,
		StartBox: in.BoxAt(start),
		EndBox:   in.BoxAt(end),
	}
}

// FrameExtender is the trivial tracker: the predicted track is just the
// detection's own frame and box. Using it turns the discriminator into a
// per-frame IoU dedupe, the degenerate case the paper's tracker improves on.
type FrameExtender struct{}

// Extend returns a single-frame track at the detection.
func (FrameExtender) Extend(det track.Detection) PredictedTrack {
	return PredictedTrack{Start: det.Frame, End: det.Frame, StartBox: det.Box, EndBox: det.Box}
}
