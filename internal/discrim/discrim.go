// Package discrim implements the paper's discriminator (§II-B): the
// component that decides whether a detection corresponds to an object
// already returned earlier in the query, so that distinct-object queries
// count each object once.
//
// The paper's discriminator applies a SORT-like tracker backwards and
// forwards through the video from each new detection, recording the object's
// predicted position in every frame where it is visible; later detections
// are discarded when they match a recorded position by IoU. Here the tracker
// is abstracted as an Extender: given a detection, it returns the predicted
// track (a frame interval with interpolated boxes). The simulation-backed
// extender reproduces a tracker of configurable quality over ground truth;
// a trivial extender covers only the detection's own frame.
//
// The discriminator also maintains per-object sighting counts, because
// ExSample's estimator needs d0 (detections matching nothing: new objects)
// and d1 (detections whose object had been seen exactly once before):
// Algorithm 1 updates N1[j] += len(d0) - len(d1).
package discrim

import (
	"fmt"

	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
)

// PredictedTrack is the tracker's output for one discovered object: the
// frame interval over which the tracker could follow the object, with
// interpolated boxes.
type PredictedTrack struct {
	Start    int64
	End      int64
	StartBox geom.Box
	EndBox   geom.Box
}

// BoxAt returns the predicted box at a frame within the track (clamped).
func (p PredictedTrack) BoxAt(frame int64) geom.Box {
	if p.End <= p.Start {
		return p.StartBox
	}
	t := float64(frame-p.Start) / float64(p.End-p.Start)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return geom.Lerp(p.StartBox, p.EndBox, t)
}

// Covers reports whether the predicted track covers the frame.
func (p PredictedTrack) Covers(frame int64) bool {
	return frame >= p.Start && frame <= p.End
}

// Extender runs the tracker forwards and backwards from a detection and
// returns the predicted track.
type Extender interface {
	Extend(det track.Detection) PredictedTrack
}

// Object is a distinct result registered by the discriminator.
type Object struct {
	// ID is the discriminator-assigned result id (0, 1, 2, ...).
	ID int
	// Class is the detection class.
	Class string
	// Track is the predicted visibility extent.
	Track PredictedTrack
	// Sightings counts how many detections have matched this object,
	// including the one that created it.
	Sightings int
	// FirstDetection is the detection that discovered the object.
	FirstDetection track.Detection
}

// Discriminator matches detections against previously discovered objects.
type Discriminator struct {
	iouThresh  float64
	extender   Extender
	objects    []*Object
	bucketSize int64
	buckets    map[int64][]int // bucket -> object indices whose track overlaps
}

// DefaultIoUThreshold is the overlap needed for a detection to match a
// predicted position, the usual SORT/IoU-matching operating point.
const DefaultIoUThreshold = 0.5

// New creates a discriminator. iouThresh <= 0 selects
// DefaultIoUThreshold.
func New(extender Extender, iouThresh float64) (*Discriminator, error) {
	if extender == nil {
		return nil, fmt.Errorf("discrim: nil extender")
	}
	if iouThresh <= 0 {
		iouThresh = DefaultIoUThreshold
	}
	if iouThresh > 1 {
		return nil, fmt.Errorf("discrim: IoU threshold %v > 1", iouThresh)
	}
	return &Discriminator{
		iouThresh:  iouThresh,
		extender:   extender,
		bucketSize: 1 << 10,
		buckets:    make(map[int64][]int),
	}, nil
}

// GetMatches classifies the frame's detections without mutating state
// (Algorithm 1, line 10): d0 are detections that match no known object (new
// objects); d1 are detections whose matched object had been seen exactly
// once before. Detections matching an object already seen twice or more fall
// into neither set.
func (d *Discriminator) GetMatches(frame int64, dets []track.Detection) (d0, d1 []track.Detection) {
	for _, det := range dets {
		obj := d.match(frame, det)
		switch {
		case obj == nil:
			d0 = append(d0, det)
		case obj.Sightings == 1:
			d1 = append(d1, det)
		}
	}
	return d0, d1
}

// Add registers the frame's detections (Algorithm 1, line 13): matched
// detections bump their object's sighting count; unmatched detections create
// new objects via the tracker. It returns the newly created objects.
func (d *Discriminator) Add(frame int64, dets []track.Detection) []*Object {
	var created []*Object
	for _, det := range dets {
		if obj := d.match(frame, det); obj != nil {
			obj.Sightings++
			continue
		}
		obj := &Object{
			ID:             len(d.objects),
			Class:          det.Class,
			Track:          d.extender.Extend(det),
			Sightings:      1,
			FirstDetection: det,
		}
		d.objects = append(d.objects, obj)
		d.indexObject(obj)
		created = append(created, obj)
	}
	return created
}

// Observe combines GetMatches and Add for the common sampler loop. d0 holds
// the detections that created new objects; d1 holds one entry per object
// that received its second sighting (reported as that object's discovering
// detection — callers of Observe only use the set sizes, per Algorithm 1
// line 11; use ObserveObjects for the full objects).
func (d *Discriminator) Observe(frame int64, dets []track.Detection) (d0, d1 []track.Detection) {
	newObjs, secondObjs := d.ObserveObjects(frame, dets)
	for _, o := range newObjs {
		d0 = append(d0, o.FirstDetection)
	}
	for _, o := range secondObjs {
		d1 = append(d1, o.FirstDetection)
	}
	return d0, d1
}

// ObserveObjects is Observe returning the affected objects instead of the
// raw detections: newObjs are the objects created by this frame (the d0
// set), secondObjs are the objects that received their second sighting (the
// d1 set). Callers implementing the technical report's cross-chunk
// accounting need secondObjs to locate each object's home chunk.
func (d *Discriminator) ObserveObjects(frame int64, dets []track.Detection) (newObjs, secondObjs []*Object) {
	// Classify and register one detection at a time so that two detections
	// of the same new object within one frame are not both counted as new.
	for _, det := range dets {
		obj := d.match(frame, det)
		switch {
		case obj == nil:
			newObj := &Object{
				ID:             len(d.objects),
				Class:          det.Class,
				Track:          d.extender.Extend(det),
				Sightings:      1,
				FirstDetection: det,
			}
			d.objects = append(d.objects, newObj)
			d.indexObject(newObj)
			newObjs = append(newObjs, newObj)
		case obj.Sightings == 1:
			secondObjs = append(secondObjs, obj)
			obj.Sightings++
		default:
			obj.Sightings++
		}
	}
	return newObjs, secondObjs
}

// match returns the known object whose predicted position at the frame best
// matches the detection (same class, IoU >= threshold), or nil.
func (d *Discriminator) match(frame int64, det track.Detection) *Object {
	var best *Object
	bestIoU := 0.0
	for _, i := range d.buckets[frame/d.bucketSize] {
		obj := d.objects[i]
		if obj.Class != det.Class || !obj.Track.Covers(frame) {
			continue
		}
		iou := geom.IoU(obj.Track.BoxAt(frame), det.Box)
		if iou >= d.iouThresh && iou > bestIoU {
			best = obj
			bestIoU = iou
		}
	}
	return best
}

func (d *Discriminator) indexObject(obj *Object) {
	for b := obj.Track.Start / d.bucketSize; b <= obj.Track.End/d.bucketSize; b++ {
		d.buckets[b] = append(d.buckets[b], obj.ID)
	}
}

// Objects returns all discovered objects in discovery order (shared slice;
// do not mutate).
func (d *Discriminator) Objects() []*Object { return d.objects }

// NumResults returns the number of distinct objects discovered so far.
func (d *Discriminator) NumResults() int { return len(d.objects) }
