package exsample

import (
	"math"
	"testing"
)

func smallDataset(t *testing.T, opts ...DatasetOption) *Dataset {
	t.Helper()
	ds, err := Synthesize(SynthSpec{
		NumFrames:    200_000,
		NumInstances: 300,
		Class:        "car",
		MeanDuration: 150,
		SkewFraction: 1.0 / 16,
		ChunkFrames:  4000,
		Seed:         21,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{},
		{Class: "car"},
		{Class: "", Limit: 5},
		{Class: "car", Limit: -1},
		{Class: "car", RecallTarget: 1.5},
		{Class: "car", RecallTarget: -0.1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted: %+v", i, q)
		}
	}
	if err := (Query{Class: "car", Limit: 5}).Validate(); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
	if err := (Query{Class: "car", RecallTarget: 0.5}).Validate(); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Strategy: Strategy(99)},
		{Policy: Policy(99)},
		{NumChunks: -1},
		{Alpha0: -1},
		{BatchSize: -1},
		{MaxFrames: -1},
		{MaxSeconds: -1},
		{ProxyQuality: 1.5},
		{ProxyDupRadius: -1},
		{TrackerCoverage: 2},
		{IoUThreshold: 2},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestSearchLimitQuery(t *testing.T) {
	ds := smallDataset(t)
	rep, err := ds.Search(Query{Class: "car", Limit: 20}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 20 {
		t.Fatalf("found %d results, want >= 20", len(rep.Results))
	}
	if rep.FramesProcessed == 0 {
		t.Fatal("no frames processed")
	}
	if rep.DetectSeconds <= 0 || rep.DecodeSeconds <= 0 {
		t.Fatalf("costs not charged: detect=%v decode=%v", rep.DetectSeconds, rep.DecodeSeconds)
	}
	if rep.ScanSeconds != 0 {
		t.Fatalf("non-proxy strategy charged scan time %v", rep.ScanSeconds)
	}
	// Result ids dense, classes right.
	for i, r := range rep.Results {
		if r.ObjectID != i {
			t.Fatalf("result %d has ObjectID %d", i, r.ObjectID)
		}
		if r.Class != "car" {
			t.Fatalf("result class %q", r.Class)
		}
	}
}

func TestSearchDistinctness(t *testing.T) {
	// With a perfect detector and full tracker coverage every result is a
	// distinct ground-truth instance: recall * population == len(results).
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", RecallTarget: 0.5}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total, err := ds.GroundTruthCount("car")
	if err != nil {
		t.Fatal(err)
	}
	wantFound := int(math.Round(rep.Recall * float64(total)))
	if len(rep.Results) != wantFound {
		t.Fatalf("results %d != recall-implied %d (duplicates under perfect conditions?)", len(rep.Results), wantFound)
	}
	if rep.Recall < 0.5 {
		t.Fatalf("recall %v below target", rep.Recall)
	}
}

func TestSearchAllStrategies(t *testing.T) {
	ds := smallDataset(t)
	for _, s := range []Strategy{StrategyExSample, StrategyRandom, StrategyRandomPlus, StrategySequential, StrategyProxy} {
		rep, err := ds.Search(Query{Class: "car", Limit: 10}, Options{Strategy: s, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(rep.Results) < 10 {
			t.Errorf("%v: only %d results", s, len(rep.Results))
		}
		if s == StrategyProxy && rep.ScanSeconds <= 0 {
			t.Errorf("proxy did not charge scan time")
		}
	}
}

func TestSearchUnknownClass(t *testing.T) {
	ds := smallDataset(t)
	if _, err := ds.Search(Query{Class: "dragon", Limit: 1}, Options{}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestSearchBudgetCaps(t *testing.T) {
	ds := smallDataset(t)
	rep, err := ds.Search(Query{Class: "car", Limit: 100000, RecallTarget: 0},
		Options{MaxFrames: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed > 50 {
		t.Fatalf("processed %d frames with MaxFrames=50", rep.FramesProcessed)
	}
	// Time cap: detector is 1/20s per frame, so 1 second allows ~20 frames
	// (plus decode).
	rep, err = ds.Search(Query{Class: "car", Limit: 100000},
		Options{MaxSeconds: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed > 25 {
		t.Fatalf("processed %d frames with MaxSeconds=1", rep.FramesProcessed)
	}
}

func TestSearchDeterministic(t *testing.T) {
	ds := smallDataset(t)
	a, err := ds.Search(Query{Class: "car", Limit: 30}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ds.Search(Query{Class: "car", Limit: 30}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesProcessed != b.FramesProcessed || len(a.Results) != len(b.Results) {
		t.Fatal("same seed produced different searches")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestSearchBatchedMatchesStatistics(t *testing.T) {
	// Batched sampling must still find results; updates are commutative so
	// effectiveness is comparable (not identical draws).
	ds := smallDataset(t)
	rep, err := ds.Search(Query{Class: "car", Limit: 30}, Options{BatchSize: 16, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 30 {
		t.Fatalf("batched search found %d results", len(rep.Results))
	}
	unb, err := ds.Search(Query{Class: "car", Limit: 30}, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Batched should not be drastically worse than unbatched.
	if rep.FramesProcessed > unb.FramesProcessed*4 {
		t.Fatalf("batched needed %d frames, unbatched %d", rep.FramesProcessed, unb.FramesProcessed)
	}
}

func TestExSampleBeatsRandomOnSkewedData(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", RecallTarget: 0.5}
	var exFrames, rndFrames int64
	for seed := uint64(0); seed < 3; seed++ {
		ex, err := ds.Search(q, Options{Strategy: StrategyExSample, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := ds.Search(q, Options{Strategy: StrategyRandom, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		exFrames += ex.FramesProcessed
		rndFrames += rnd.FramesProcessed
	}
	if exFrames >= rndFrames {
		t.Fatalf("exsample frames %d >= random %d on 1/16-skewed data", exFrames, rndFrames)
	}
	t.Logf("savings: %.2fx", float64(rndFrames)/float64(exFrames))
}

func TestProxyPaysScanBeforeResults(t *testing.T) {
	// The proxy's first result cannot arrive before the scan finishes: its
	// curve seconds all exceed ScanSeconds.
	ds := smallDataset(t)
	rep, err := ds.Search(Query{Class: "car", Limit: 5}, Options{Strategy: StrategyProxy, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScanSeconds <= 0 {
		t.Fatal("no scan charged")
	}
	for _, s := range rep.CurveSeconds {
		if s < rep.ScanSeconds {
			t.Fatalf("result at %vs before scan end %vs", s, rep.ScanSeconds)
		}
	}
	// And ExSample finds the same 5 results in far less time.
	ex, err := ds.Search(Query{Class: "car", Limit: 5}, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if ex.TotalSeconds() >= rep.TotalSeconds() {
		t.Fatalf("exsample %vs >= proxy %vs for a 5-result limit query", ex.TotalSeconds(), rep.TotalSeconds())
	}
}

func TestRecallCurveShape(t *testing.T) {
	ds := smallDataset(t)
	rep, err := ds.Search(Query{Class: "car", Limit: 40}, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CurveSamples) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(rep.CurveFound); i++ {
		if rep.CurveFound[i] < rep.CurveFound[i-1] {
			t.Fatal("curve found counts decrease")
		}
		if rep.CurveSamples[i] < rep.CurveSamples[i-1] {
			t.Fatal("curve samples decrease")
		}
		if rep.CurveSeconds[i] < rep.CurveSeconds[i-1] {
			t.Fatal("curve seconds decrease")
		}
	}
}

func TestSecondsToRecall(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", RecallTarget: 0.6}, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sec, ok := rep.SecondsToRecall(0.3)
	if !ok {
		t.Fatal("0.3 recall not found on curve despite reaching 0.6")
	}
	if sec <= 0 || sec > rep.TotalSeconds() {
		t.Fatalf("SecondsToRecall = %v, total %v", sec, rep.TotalSeconds())
	}
	if _, ok := rep.SecondsToRecall(0.99); ok {
		t.Fatal("0.99 recall reported reached")
	}
}

func TestOpenProfile(t *testing.T) {
	ds, err := OpenProfile("dashcam", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "dashcam" {
		t.Fatalf("Name = %q", ds.Name())
	}
	classes := ds.Classes()
	if len(classes) != 7 {
		t.Fatalf("dashcam classes = %v", classes)
	}
	if ds.NumFrames() <= 0 || ds.NumChunks() <= 0 || ds.Hours() <= 0 {
		t.Fatal("bad dataset dimensions")
	}
	if _, err := OpenProfile("bogus", 0.1, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	n, err := ds.GroundTruthCount("bicycle")
	if err != nil || n <= 0 {
		t.Fatalf("GroundTruthCount = %d, %v", n, err)
	}
	if _, err := ds.GroundTruthCount("dragon"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestProfileNames(t *testing.T) {
	names := ProfileNames()
	if len(names) != 6 {
		t.Fatalf("ProfileNames = %v", names)
	}
}

func TestScanSeconds(t *testing.T) {
	ds := smallDataset(t)
	want := float64(ds.NumFrames()) / 100
	if got := ds.ScanSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ScanSeconds = %v, want %v", got, want)
	}
}

func TestNewDetector(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	det, err := ds.NewDetector("car")
	if err != nil {
		t.Fatal(err)
	}
	if det.CostSeconds() <= 0 {
		t.Fatal("zero detector cost")
	}
	// Find a frame with a known instance via a quick search.
	rep, err := ds.Search(Query{Class: "car", Limit: 1}, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	dets := det.Detect(rep.Results[0].Frame)
	if len(dets) == 0 {
		t.Fatal("detector found nothing on a frame with a known result")
	}
	if _, err := ds.NewDetector("dragon"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		StrategyExSample:   "exsample",
		StrategyRandom:     "random",
		StrategyRandomPlus: "random+",
		StrategySequential: "sequential",
		StrategyProxy:      "proxy",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy String empty")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SynthSpec{NumFrames: 0, NumInstances: 10, MeanDuration: 5}); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := Synthesize(SynthSpec{NumFrames: 1000, NumInstances: 0, MeanDuration: 5}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestSearchWithDetectorNoise(t *testing.T) {
	ds := smallDataset(t, WithNoise(NoiseConfig{
		MissProb:          0.2,
		EdgeMissBoost:     0.3,
		JitterFrac:        0.05,
		FalsePositiveRate: 0.1,
	}))
	rep, err := ds.Search(Query{Class: "car", Limit: 15}, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 15 {
		t.Fatalf("noisy search found %d results", len(rep.Results))
	}
	// Recall counts only true instances, so it can lag len(Results) when
	// false positives sneak in, but must stay positive.
	if rep.Recall <= 0 {
		t.Fatal("zero recall with noise")
	}
}

func TestSearchRespectsRecallWithPartialTracker(t *testing.T) {
	// With 30% tracker coverage the same physical object can be returned
	// multiple times; results >= distinct recall count.
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 50},
		Options{TrackerCoverage: 0.3, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	total, _ := ds.GroundTruthCount("car")
	distinct := int(math.Round(rep.Recall * float64(total)))
	if len(rep.Results) < distinct {
		t.Fatalf("results %d < distinct found %d", len(rep.Results), distinct)
	}
}
