package exsample

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/exsample/exsample/internal/datasets"
	"github.com/exsample/exsample/internal/geom"
	"github.com/exsample/exsample/internal/track"
	"github.com/exsample/exsample/internal/video"
)

// GroundTruthFile is the JSON interchange format for dataset ground truth,
// compatible with cmd/exgen's export. It carries only what the evaluation
// needs — instance identities, classes and visibility intervals; bounding
// boxes are reassigned deterministically on load (spatially disjoint lanes),
// which preserves distinct-object semantics without bloating the file.
type GroundTruthFile struct {
	Dataset   string                `json:"dataset"`
	Scale     float64               `json:"scale,omitempty"`
	NumFrames int64                 `json:"num_frames"`
	NumChunks int                   `json:"num_chunks"`
	FPS       float64               `json:"fps,omitempty"`
	Instances []GroundTruthInstance `json:"instances"`
}

// GroundTruthInstance is one distinct object in the interchange format.
type GroundTruthInstance struct {
	ID    int    `json:"id"`
	Class string `json:"class"`
	Start int64  `json:"start_frame"`
	End   int64  `json:"end_frame"`
}

// SaveGroundTruth writes the dataset's ground truth as JSON.
func (d *Dataset) SaveGroundTruth(w io.Writer) error {
	doc := GroundTruthFile{
		Dataset:   d.Name(),
		Scale:     d.inner.Scale,
		NumFrames: d.NumFrames(),
		NumChunks: d.NumChunks(),
		FPS:       d.inner.Profile.FPS,
	}
	for _, in := range d.inner.Instances {
		doc.Instances = append(doc.Instances, GroundTruthInstance{
			ID: in.ID, Class: in.Class, Start: in.Start, End: in.End,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadGroundTruth builds a searchable dataset from a ground-truth JSON
// document (e.g. one produced by SaveGroundTruth or cmd/exgen, or
// hand-written from real annotations). The repository is chunked evenly into
// NumChunks pieces.
func LoadGroundTruth(r io.Reader, opts ...DatasetOption) (*Dataset, error) {
	var doc GroundTruthFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("exsample: parsing ground truth: %w", err)
	}
	if doc.NumFrames <= 0 {
		return nil, fmt.Errorf("exsample: ground truth has %d frames", doc.NumFrames)
	}
	if len(doc.Instances) == 0 {
		return nil, fmt.Errorf("exsample: ground truth has no instances")
	}
	if doc.NumChunks <= 0 {
		doc.NumChunks = 64
	}
	if doc.FPS <= 0 {
		doc.FPS = 30
	}
	if doc.Dataset == "" {
		doc.Dataset = "imported"
	}

	instances := make([]track.Instance, 0, len(doc.Instances))
	seen := make(map[int]bool, len(doc.Instances))
	classes := make(map[string]int)
	meanDur := make(map[string]float64)
	for i, gi := range doc.Instances {
		if seen[gi.ID] {
			return nil, fmt.Errorf("exsample: duplicate instance id %d", gi.ID)
		}
		seen[gi.ID] = true
		in := track.Instance{
			ID:       gi.ID,
			Class:    gi.Class,
			Start:    gi.Start,
			End:      gi.End,
			StartBox: loadLaneBox(i, 0),
			EndBox:   loadLaneBox(i, 1),
		}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("exsample: instance %d: %w", gi.ID, err)
		}
		if in.Start >= doc.NumFrames {
			return nil, fmt.Errorf("exsample: instance %d starts at %d beyond %d frames",
				gi.ID, in.Start, doc.NumFrames)
		}
		instances = append(instances, in)
		classes[gi.Class]++
		meanDur[gi.Class] += float64(in.Duration())
	}
	idx, err := track.NewIndex(instances, doc.NumFrames, 0)
	if err != nil {
		return nil, err
	}
	repo, err := video.NewRepository(doc.FPS, doc.NumFrames)
	if err != nil {
		return nil, err
	}
	chunks, err := repo.ChunkEvenly(doc.NumChunks)
	if err != nil {
		return nil, err
	}

	// Synthesize a profile so introspection (Classes, query specs) works.
	var queries []datasets.QuerySpec
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		queries = append(queries, datasets.QuerySpec{
			Class:        c,
			NumInstances: classes[c],
			MeanDuration: meanDur[c] / float64(classes[c]),
		})
	}
	scale := doc.Scale
	if scale <= 0 {
		scale = 1
	}
	inner := &datasets.Dataset{
		Profile: datasets.Profile{
			Name:      doc.Dataset,
			NumFrames: doc.NumFrames,
			FPS:       doc.FPS,
			Queries:   queries,
		},
		Scale:        scale,
		Repo:         repo,
		Chunks:       chunks,
		Instances:    instances,
		Index:        idx,
		CountByClass: classes,
	}
	return newDataset(inner, 1, opts...), nil
}

// loadLaneBox mirrors the synthetic generator's disjoint-lane placement so
// imported instances never collide spatially.
func loadLaneBox(ord int, phase int) geom.Box {
	const (
		lanes      = 997
		laneHeight = 130
		baseSize   = 60
	)
	lane := ord % lanes
	x := 100 + float64((ord*7919)%1200)
	y := float64(lane) * laneHeight
	size := baseSize + float64(ord%5)*10
	drift := 40.0 * float64(phase)
	return geom.Rect(x+drift, y, size, size*1.2)
}
