package exsample

import "testing"

// Tests for the §VII fusion (proxy-scored within-chunk order) and the
// technical report's cross-chunk accounting.

func TestFusionChargesPerChunkScanOnly(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 15},
		Options{FuseProxyWithinChunk: true, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 15 {
		t.Fatalf("fusion found %d results", len(rep.Results))
	}
	if rep.ScanSeconds <= 0 {
		t.Fatal("fusion charged no per-chunk scoring")
	}
	fullScan := ds.ScanSeconds()
	if rep.ScanSeconds >= fullScan {
		t.Fatalf("fusion scoring %vs >= full scan %vs; should score only visited chunks",
			rep.ScanSeconds, fullScan)
	}
	// Scoring must be a whole number of chunks: 200k frames / 4k per chunk
	// = 50 chunks, each 4000/100 = 40s of scoring.
	chunkScan := 4000.0 / 100.0
	ratio := rep.ScanSeconds / chunkScan
	if ratio != float64(int(ratio)) {
		t.Fatalf("scan %vs is not a whole number of %vs chunks", rep.ScanSeconds, chunkScan)
	}
}

func TestFusionBeatsFullProxyOnLimitQueries(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 10}
	fusion, err := ds.Search(q, Options{FuseProxyWithinChunk: true, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := ds.Search(q, Options{Strategy: StrategyProxy, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if fusion.TotalSeconds() >= proxy.TotalSeconds() {
		t.Fatalf("fusion %vs >= full proxy %vs on a limit query",
			fusion.TotalSeconds(), proxy.TotalSeconds())
	}
}

func TestFusionFindsResultsInFewerFramesThanPlain(t *testing.T) {
	// With a perfect proxy, scored within-chunk order should need no more
	// detector calls than the stochastic default to hit the same limit.
	// (Allow generous noise: the point is it works, not a fixed factor.)
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}
	var fusionFrames, plainFrames int64
	for seed := uint64(0); seed < 3; seed++ {
		f, err := ds.Search(q, Options{FuseProxyWithinChunk: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p, err := ds.Search(q, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fusionFrames += f.FramesProcessed
		plainFrames += p.FramesProcessed
	}
	if fusionFrames > plainFrames*2 {
		t.Fatalf("fusion needed %d frames vs plain %d", fusionFrames, plainFrames)
	}
}

func TestFusionOptionValidation(t *testing.T) {
	ds := smallDataset(t)
	if _, err := ds.Search(Query{Class: "car", Limit: 1},
		Options{FuseProxyWithinChunk: true, Strategy: StrategyRandom}); err == nil {
		t.Error("fusion with random strategy accepted")
	}
	if _, err := ds.Search(Query{Class: "car", Limit: 1},
		Options{FuseProxyWithinChunk: true, UniformWithinChunk: true}); err == nil {
		t.Error("fusion with uniform-within accepted")
	}
	if _, err := ds.Search(Query{Class: "car", Limit: 1},
		Options{HomeChunkAccounting: true, Strategy: StrategyProxy}); err == nil {
		t.Error("home accounting with proxy strategy accepted")
	}
}

func TestHomeChunkAccountingSearch(t *testing.T) {
	// Long instances that straddle chunk boundaries exercise the
	// cross-chunk path; the search must behave sanely and find everything.
	ds, err := Synthesize(SynthSpec{
		NumFrames:    100_000,
		NumInstances: 80,
		Class:        "car",
		MeanDuration: 5000, // ~2.5 chunks long
		SkewFraction: 0.25,
		ChunkFrames:  2000,
		Seed:         51,
	}, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ds.Search(Query{Class: "car", RecallTarget: 0.8},
		Options{HomeChunkAccounting: true, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall < 0.8 {
		t.Fatalf("recall %v with home accounting", rep.Recall)
	}
	// And it should not be wildly worse than default accounting.
	def, err := ds.Search(Query{Class: "car", RecallTarget: 0.8}, Options{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed > def.FramesProcessed*3 {
		t.Fatalf("home accounting needed %d frames vs default %d",
			rep.FramesProcessed, def.FramesProcessed)
	}
}

func TestHomeChunkAccountingBatched(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	rep, err := ds.Search(Query{Class: "car", Limit: 20},
		Options{HomeChunkAccounting: true, BatchSize: 8, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 20 {
		t.Fatalf("found %d results", len(rep.Results))
	}
}
