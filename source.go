package exsample

import (
	"errors"
	"sync/atomic"

	"github.com/exsample/exsample/internal/detect"
	"github.com/exsample/exsample/internal/discrim"
	"github.com/exsample/exsample/internal/shard"
	"github.com/exsample/exsample/internal/video"
)

// ErrNoActiveShards is returned (wrapped, with the source's name) when a
// bounded query is submitted against an elastic source whose every shard
// is draining or gated — there is nothing to sample and the query could
// never make progress. Match it with errors.Is. Standing queries are the
// exception: they park until the next append instead of failing.
var ErrNoActiveShards = errors.New("no active shards")

// Source is the seam between the query pipeline (Search, Session, Engine)
// and a video repository: a frame layout, a chunk layout, a detector
// factory and a cost model. A Source can be a single local Dataset or a
// ShardedSource composing many datasets into one global sampler space —
// the Thompson sampler, discriminator and report accounting are identical
// either way, which is what lets one Engine query fan its detector calls
// out across every shard's workers while the decision loop stays
// centralized and byte-deterministic.
//
// Source is implemented by Dataset and ShardedSource; the interface has an
// unexported method, so outside packages consume sources rather than
// providing them (the pipeline needs internal plumbing — ground-truth
// indexes, cost models — that only this package can wire).
type Source interface {
	// Name identifies the source.
	Name() string
	// NumFrames returns the repository size in frames (global space).
	NumFrames() int64
	// NumChunks returns the native chunk count.
	NumChunks() int
	// Hours returns the repository length in hours of video.
	Hours() float64
	// Classes lists the searchable object classes, sorted.
	Classes() []string
	// GroundTruthCount returns the number of distinct instances of a class.
	GroundTruthCount(class string) (int, error)
	// NumShards reports how many independently scannable shards back the
	// source (1 for a local Dataset).
	NumShards() int

	// querySource exposes the internal pipeline plumbing.
	querySource() *querySource
}

// sourceIDs hands out the unique per-source ids that key the detector
// memo cache.
var sourceIDs atomic.Uint64

// capacitySignaler is the structural contract a backend (the router)
// satisfies to feed capacity-loss events into the adaptive round sizer: a
// cumulative count of circuit-breaker open transitions. Matched by type
// assertion so the root package needs no dependency on backend/router.
type capacitySignaler interface {
	BreakerOpens() int64
}

// replicaSignaler extends capacitySignaler with the per-replica detail a
// capacity-aware fanout backend (backend/router) exposes: per-replica
// breaker-open counts (so a capacity-loss event can be attributed to the
// replica that dropped out), the fleet's capacity weights, and whether
// scatter-gather splitting is on (in which case the sizer should learn
// one quota per replica). Matched by type assertion, like
// capacitySignaler.
type replicaSignaler interface {
	capacitySignaler
	ReplicaOpens() []int64
	CapacityWeights() []float64
	ScatterEnabled() bool
}

// shardReplicas is one shard's replica-fleet snapshot, as returned by
// querySource.replicaFleets.
type shardReplicas struct {
	// shard is the shard index (0 for unsharded sources) — the same
	// index the scheduler's affinity key encodes.
	shard int
	// scatter reports whether the shard's router splits batches across
	// replicas (per-replica quota learning only pays off then).
	scatter bool
	// weights are the fleet's capacity weights, indexed by replica.
	weights []float64
	// opens are the cumulative per-replica breaker-open counts.
	opens []int64
}

// backendMaxBatch returns the sizer's quota ceiling for the source: the
// tightest positive MaxBatch across its backends, 0 (meaning "no bound,
// use the sizer default cap") when no backend reports one.
func (qs *querySource) backendMaxBatch() int {
	if qs.maxBatch == nil {
		return 0
	}
	return qs.maxBatch()
}

// querySource is the internal contract behind Source: everything the query
// pipeline needs from a repository, expressed in global frame coordinates.
type querySource struct {
	// id uniquely identifies this open source (cache key prefix).
	id uint64
	// contentID is the stable content address of the source: a hash of the
	// construction inputs that determine detector output (profile, scale,
	// generation seed, noise model; composed member hashes for sharded
	// sources). Two processes opening the same video derive the same value,
	// which is what lets shared-tier cache entries (cachestore) survive
	// restarts and cross process boundaries. For sharded sources the hash
	// composes the initial members in order; elastic attaches keep the id
	// (frames append past the existing space), so sharing the appended
	// range across processes is sound only when they attach the same shards
	// in the same order. Sources with custom
	// backends inherit the same determinism caveat as the memo cache: the
	// backend must be deterministic per (class, frame) for sharing to be
	// sound.
	contentID uint64
	name      string
	numFrames int64
	// fps is the recording rate used for hour-granularity stratification
	// (random+'s initial segmentation).
	fps float64
	// chunks is the native chunk layout.
	chunks []video.Chunk
	// numShards and shardOf expose the shard topology for the engine's
	// affinity grouping; shardOf is nil for unsharded sources.
	numShards int
	shardOf   func(frame int64) int
	// topology, when non-nil, returns the source's current elastic
	// topology snapshot (generation-counted, append-only address space).
	// The query pipeline compares generations at every pick: when the
	// topology moves, newly attached shards' chunks become fresh sampler
	// arms and draining shards' chunks are fenced, with all other belief
	// state carried across. nil means the topology is fixed for the
	// source's lifetime (a local Dataset).
	topology func() *shard.Snapshot
	// cacheable is false when detector output is not a pure function of
	// (source, class, frame) — e.g. under failure injection — and the
	// memo cache must be bypassed.
	cacheable bool
	// maxBatch, when non-nil, returns the tightest positive MaxBatch hint
	// across the source's backends (0 = no bound) — the adaptive round
	// sizer's quota ceiling. Consulted once per Submit.
	maxBatch func() int
	// breakerOpens, when non-nil, returns the cumulative count of circuit
	// breakers opened across the source's backends (0 when none reports
	// capacity). The adaptive sizer polls it once per round and treats any
	// increase as a capacity-loss event.
	breakerOpens func() int64
	// replicaFleets, when non-nil, snapshots the per-replica detail of
	// every shard whose backend is a replicaSignaler (empty when none
	// is). The adaptive sizer uses it to seed per-replica quota
	// controllers for scatter-enabled shards and to attribute a
	// capacity-loss edge to the (shard, replica) that dropped out.
	replicaFleets func() []shardReplicas

	// decodeCost is the charged random-read+decode time for one frame.
	decodeCost func(frame int64) float64
	// scanSeconds is the charged proxy-scoring time for a frame range.
	scanSeconds func(start, end int64) float64
	// groundTruth returns the distinct-instance population of a class.
	groundTruth func(class string) (int, error)
	// shardTruth returns one shard's population of a class (0 when the
	// shard lacks it). Non-nil only for elastic sources: the query
	// pipeline uses it to measure recall against the shards the query has
	// actually been able to reach — shards active at submission plus any
	// observed active at a later topology sync — so an attached shard
	// grows a running query's recall denominator the moment it becomes
	// samplable, while a shard attached and drained unseen changes
	// nothing.
	shardTruth func(class string, shard int) int
	// newDetector builds the per-class batched detector: the attached
	// public Backend behind an adapter when one is configured, otherwise
	// the simulated detector (with any failure injection applied).
	// DetectBatch must be safe for concurrent use.
	newDetector func(class string) (detect.BatchDetector, error)
	// newExtender builds the discriminator's SORT-style tracker model.
	newExtender func(coverage float64) (discrim.Extender, error)
	// newScorer builds a per-frame proxy scorer for the class.
	newScorer func(class string, quality float64, seed uint64) (func(frame int64) float64, error)
}
