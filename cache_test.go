package exsample

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// Tests for the Engine's cross-query detector memo cache.

func TestCachedRunByteIdenticalResults(t *testing.T) {
	// A warm-cache run must return byte-identical Results to a cold run
	// for the same seed: the cache changes charged costs, never behavior.
	ds := smallDataset(t)
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 101}

	cold, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, CacheEntries: 1 << 16})
	first, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	firstRep, err := first.Wait()
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	secondRep, err := second.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(cold.Results, firstRep.Results) ||
		!reflect.DeepEqual(cold.Results, secondRep.Results) {
		t.Fatal("cached runs diverged from the uncached run's Results")
	}
	if firstRep.CacheMisses != firstRep.FramesProcessed || firstRep.CacheHits != 0 {
		t.Fatalf("cold engine run: hits=%d misses=%d over %d frames",
			firstRep.CacheHits, firstRep.CacheMisses, firstRep.FramesProcessed)
	}
	if secondRep.CacheHits != secondRep.FramesProcessed {
		t.Fatalf("warm run hit %d of %d frames", secondRep.CacheHits, secondRep.FramesProcessed)
	}
	// Hits are charged decode-only: the warm run pays no detector time
	// but the same decode time.
	if secondRep.DetectSeconds != 0 {
		t.Fatalf("warm run charged %v detector seconds", secondRep.DetectSeconds)
	}
	if secondRep.DecodeSeconds != firstRep.DecodeSeconds {
		t.Fatalf("warm run decode %v, cold run %v", secondRep.DecodeSeconds, firstRep.DecodeSeconds)
	}
	if firstRep.DetectSeconds != cold.DetectSeconds {
		t.Fatalf("cold engine run charged %v detector seconds, Search charged %v",
			firstRep.DetectSeconds, cold.DetectSeconds)
	}
	st := e.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cache stats %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
}

func TestCacheDisabledEngineReportsNoCacheCounters(t *testing.T) {
	ds := smallDataset(t)
	e := newTestEngine(t, EngineOptions{Workers: 2})
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 5}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 || rep.CacheMisses != 0 {
		t.Fatalf("cacheless engine recorded hits=%d misses=%d", rep.CacheHits, rep.CacheMisses)
	}
	if st := e.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache stats %+v", st)
	}
}

func TestConcurrentCachedQueriesRaceClean(t *testing.T) {
	// Many concurrent queries sharing one cache across two sources; run
	// under -race this is the memo cache's concurrency suite. Every
	// query's outcome must equal its standalone Search.
	ds1 := smallDataset(t, WithPerfectDetector())
	ds2 := smallDataset(t) // same content, noisy detector, distinct source id
	// FramesPerRound 1 so every query is comparable to unbatched Search.
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 1, CacheEntries: 1 << 16})

	type spec struct {
		src  *Dataset
		seed uint64
	}
	var specs []spec
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{ds1, uint64(300 + i%2)}) // overlapping seeds → shared frames
		specs = append(specs, spec{ds2, uint64(400 + i%2)})
	}
	q := Query{Class: "car", Limit: 15}
	want := make([]*Report, len(specs))
	for i, sp := range specs {
		rep, err := sp.src.Search(q, Options{Seed: sp.seed})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	handles := make([]*QueryHandle, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		h, err := e.Submit(context.Background(), sp.src, q, Options{Seed: sp.seed})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		wg.Add(1)
		go func(h *QueryHandle) {
			defer wg.Done()
			for range h.Events() {
			}
		}(h)
	}
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !reflect.DeepEqual(rep.Results, want[i].Results) {
			t.Errorf("query %d diverged under shared cache (results %d vs %d)",
				i, len(rep.Results), len(want[i].Results))
		}
	}
	wg.Wait()
	st := e.CacheStats()
	if st.Hits == 0 {
		t.Error("duplicate seeded queries produced no cache hits")
	}
}

func TestCacheSharedAcrossQueriesOnShardedSource(t *testing.T) {
	shards := shardDatasets(t, 2, 20_000, WithPerfectDetector())
	ss, err := NewShardedSource("fleet", shards...)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, CacheEntries: 1 << 16})
	q := Query{Class: "car", Limit: 20}
	h1, err := e.Submit(context.Background(), ss, q, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := h1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(context.Background(), ss, q, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Results, rep2.Results) {
		t.Fatal("same-seed sharded queries diverged")
	}
	if rep2.CacheHits != rep2.FramesProcessed {
		t.Fatalf("second sharded query hit %d of %d frames", rep2.CacheHits, rep2.FramesProcessed)
	}
	// Cache hits never reach a shard: detect traffic counts only misses.
	var detects int64
	for _, st := range ss.ShardStats() {
		detects += st.DetectCalls
	}
	if detects != rep1.FramesProcessed {
		t.Fatalf("shards saw %d detector calls for %d cold frames", detects, rep1.FramesProcessed)
	}
}
