package exsample

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

func newTestEngine(t *testing.T, opts EngineOptions) *Engine {
	t.Helper()
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestEngineMatchesSearchExactly(t *testing.T) {
	// A single seeded query through the engine must be byte-identical to
	// Dataset.Search — the engine adds scheduling, never behavior.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}
	opts := Options{Seed: 73}

	want, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 1, FramesPerRound: 1})
	h, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("engine diverged from Search:\nsearch: frames=%d results=%d %+v\nengine: frames=%d results=%d %+v",
			want.FramesProcessed, len(want.Results), want,
			got.FramesProcessed, len(got.Results), got)
	}
}

func TestEngineBatchedMatchesBatchedSearch(t *testing.T) {
	// FramesPerRound has exactly Search's BatchSize semantics: a round's
	// picks are drawn before its updates apply. Worker count must not
	// matter — only the stateless detector is parallelized.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 25}

	want, err := ds.Search(q, Options{BatchSize: 16, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		e := newTestEngine(t, EngineOptions{Workers: workers, FramesPerRound: 16})
		h, err := e.Submit(context.Background(), ds, q, Options{Seed: 73})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: engine diverged from batched Search (frames %d vs %d, results %d vs %d)",
				workers, got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
		}
	}
}

func TestEngineDeterministicUnderConcurrentLoad(t *testing.T) {
	// A query's outcome must not depend on what else the engine is
	// running: per-query state is isolated and apply order is pick order.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 41}

	want, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 1})
	var others []*QueryHandle
	for i := 0; i < 3; i++ {
		h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 15},
			Options{Strategy: StrategyRandom, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		others = append(others, h)
	}
	h, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("concurrent load changed a query's outcome (frames %d vs %d, results %d vs %d)",
			got.FramesProcessed, want.FramesProcessed, len(got.Results), len(want.Results))
	}
	for _, o := range others {
		if _, err := o.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineManyConcurrentQueries(t *testing.T) {
	// The acceptance bar: 8+ simultaneous queries across two dataset
	// profiles, every one reaching its Limit or exhausting its dataset.
	dash, err := OpenProfile("dashcam", 0.02, 7, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	bdd, err := OpenProfile("bdd1k", 0.02, 8, WithPerfectDetector())
	if err != nil {
		t.Fatal(err)
	}
	type spec struct {
		ds    *Dataset
		class string
		strat Strategy
	}
	specs := []spec{
		{dash, "bicycle", StrategyExSample},
		{dash, "bus", StrategyExSample},
		{dash, "traffic light", StrategyRandom},
		{dash, "truck", StrategyExSample},
		{bdd, "bike", StrategyExSample},
		{bdd, "bus", StrategyRandomPlus},
		{bdd, "person", StrategyExSample},
		{bdd, "truck", StrategyExSample},
		{bdd, "rider", StrategySequential},
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 2})
	handles := make([]*QueryHandle, len(specs))
	for i, sp := range specs {
		h, err := e.Submit(context.Background(), sp.ds, Query{Class: sp.class, Limit: 5},
			Options{Strategy: sp.strat, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d (%s/%s): %v", i, sp.ds.Name(), sp.class, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, specs[i].class, err)
		}
		if len(rep.Results) < 5 && rep.FramesProcessed < specs[i].ds.NumFrames() {
			t.Errorf("query %d (%s/%s): %d results after %d frames — neither Limit nor exhaustion",
				i, specs[i].ds.Name(), specs[i].class, len(rep.Results), rep.FramesProcessed)
		}
	}
}

func TestEngineFairShareProgress(t *testing.T) {
	// Lock-step rounds with equal quotas: while the short query runs, the
	// long one must receive detector budget at the same rate.
	ds := smallDataset(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 1})

	long, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 100000},
		Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	short, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 10},
		Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	shortRep, err := short.Wait()
	if err != nil {
		t.Fatal(err)
	}
	long.Cancel()
	longRep, err := long.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	if len(shortRep.Results) < 10 {
		t.Fatalf("short query found %d results", len(shortRep.Results))
	}
	// The long query ran in lock-step with the short one, so by the time
	// the short query finished (plus at most a few rounds of cancellation
	// latency) the long one must have processed a comparable frame count.
	if longRep.FramesProcessed < shortRep.FramesProcessed-1 {
		t.Fatalf("long query starved: %d frames vs short query's %d",
			longRep.FramesProcessed, shortRep.FramesProcessed)
	}
}

func TestEngineCancellationMidQuery(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 1, EventBuffer: 1 << 16})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := e.Submit(ctx, ds, Query{Class: "car", Limit: 100000}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for ev := range h.Events() {
		seen++
		if ev.FramesProcessed == 0 {
			t.Fatal("event carries no progress")
		}
		if seen == 5 {
			cancel()
		}
	}
	rep, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if rep.FramesProcessed < 5 || rep.FramesProcessed >= ds.NumFrames() {
		t.Fatalf("partial report has %d frames", rep.FramesProcessed)
	}
}

func TestEngineEventOverflowNeverStallsScheduler(t *testing.T) {
	// A consumer that never drains a 1-slot event buffer: the scheduler
	// must keep running at full speed (the query completes), overflow must
	// be counted on Dropped, and the final Report must be complete and
	// byte-identical to an unthrottled run — event loss is lossy telemetry,
	// never lost work.
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 30}
	opts := Options{Seed: 17}

	want, err := ds.Search(q, Options{Seed: 17, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 4, EventBuffer: 1})
	h, err := e.Submit(context.Background(), ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately do not read h.Events() until the query is done.
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, rep) {
		t.Fatalf("report degraded by a slow consumer: frames %d vs %d, results %d vs %d",
			rep.FramesProcessed, want.FramesProcessed, len(rep.Results), len(want.Results))
	}
	if h.Dropped() == 0 {
		t.Fatalf("no events dropped with buffer 1 over %d frames", rep.FramesProcessed)
	}
	var delivered int64
	for range h.Events() {
		delivered++
	}
	if delivered > 1 {
		t.Fatalf("%d events buffered in a 1-slot channel", delivered)
	}
	if delivered+h.Dropped() != rep.FramesProcessed {
		t.Fatalf("delivered %d + dropped %d != %d frames processed",
			delivered, h.Dropped(), rep.FramesProcessed)
	}
}

func TestEngineEventsStreamComplete(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 4, EventBuffer: 1 << 16})

	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 20}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var events, found int
	var lastSeconds float64
	for ev := range h.Events() {
		events++
		found += len(ev.New)
		if ev.Seconds < lastSeconds {
			t.Fatal("charged time went backwards")
		}
		lastSeconds = ev.Seconds
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if h.Dropped() != 0 {
		t.Fatalf("%d events dropped with an oversized buffer", h.Dropped())
	}
	if int64(events) != rep.FramesProcessed {
		t.Fatalf("streamed %d events for %d frames", events, rep.FramesProcessed)
	}
	if found != len(rep.Results) {
		t.Fatalf("streamed %d results, report has %d", found, len(rep.Results))
	}
}

func TestEngineSubmitValidation(t *testing.T) {
	ds := smallDataset(t)
	e := newTestEngine(t, EngineOptions{})
	ctx := context.Background()

	cases := []struct {
		name string
		q    Query
		opts Options
	}{
		{"no stop condition", Query{Class: "car"}, Options{}},
		{"unknown class", Query{Class: "dragon", Limit: 1}, Options{}},
		{"batch size", Query{Class: "car", Limit: 1}, Options{BatchSize: 8}},
		{"parallelism", Query{Class: "car", Limit: 1}, Options{BatchSize: 8, Parallelism: 2}},
		{"autochunk", Query{Class: "car", Limit: 1}, Options{AutoChunk: true}},
		{"proxy training", Query{Class: "car", Limit: 1}, Options{Strategy: StrategyProxy, ProxyTrainPositives: 3}},
	}
	for _, tc := range cases {
		if _, err := e.Submit(ctx, ds, tc.q, tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewEngine(EngineOptions{EventBuffer: -1}); err == nil {
		t.Error("negative event buffer accepted")
	}
	if _, err := NewEngine(EngineOptions{CacheEntries: -1}); err == nil {
		t.Error("negative cache entries accepted")
	}

	closed := newTestEngine(t, EngineOptions{})
	closed.Close()
	if _, err := closed.Submit(ctx, ds, Query{Class: "car", Limit: 1}, Options{}); err == nil {
		t.Error("Submit after Close accepted")
	}
}

func TestEngineCloseFinalizesQueries(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	e, err := NewEngine(EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 100000}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Close = %v, want context.Canceled", err)
	}
	// The events channel must be closed so consumers unblock.
	for range h.Events() {
	}
}

func TestEngineAllStrategies(t *testing.T) {
	ds := smallDataset(t)
	e := newTestEngine(t, EngineOptions{Workers: 2})
	for _, strat := range []Strategy{StrategyExSample, StrategyRandom, StrategyRandomPlus, StrategySequential, StrategyProxy} {
		h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 5},
			Options{Strategy: strat, Seed: 95})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		rep, err := h.Wait()
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(rep.Results) < 5 {
			t.Errorf("%v: engine found %d results", strat, len(rep.Results))
		}
		if strat == StrategyProxy && rep.ScanSeconds <= 0 {
			t.Error("proxy query did not charge the scan")
		}
	}
}

func TestEngineMatchesSessionDrivenToExhaustion(t *testing.T) {
	// Engine and Session share the step loop; driving both over a small
	// dataset with no reachable limit must agree frame for frame.
	ds, err := Synthesize(SynthSpec{
		NumFrames:    2000,
		NumInstances: 3,
		Class:        "car",
		MeanDuration: 10,
		ChunkFrames:  500,
		Seed:         97,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.NewSession(Query{Class: "car", Limit: 1000}, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := sess.Step(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	e := newTestEngine(t, EngineOptions{Workers: 1})
	h, err := e.Submit(context.Background(), ds, Query{Class: "car", Limit: 1000}, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed != sess.Frames() || len(rep.Results) != len(sess.Results()) {
		t.Fatalf("engine exhausted at %d frames/%d results, session at %d/%d",
			rep.FramesProcessed, len(rep.Results), sess.Frames(), len(sess.Results()))
	}
}

func ExampleEngine() {
	ds, err := Synthesize(SynthSpec{
		NumFrames:    100_000,
		NumInstances: 200,
		Class:        "event",
		MeanDuration: 120,
		SkewFraction: 1.0 / 8,
		Seed:         5,
	}, WithPerfectDetector())
	if err != nil {
		panic(err)
	}
	eng, err := NewEngine(EngineOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Run the same class at two seeds concurrently; both share the
	// detector worker pool.
	var handles []*QueryHandle
	for seed := uint64(1); seed <= 2; seed++ {
		h, err := eng.Submit(context.Background(), ds,
			Query{Class: "event", Limit: 10}, Options{Seed: seed})
		if err != nil {
			panic(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			panic(err)
		}
		fmt.Printf("query %d: reached its limit: %v\n", i, len(rep.Results) >= 10)
	}
	// Output:
	// query 0: reached its limit: true
	// query 1: reached its limit: true
}

// TestEngineOptionDefaulting pins the sizing-knob defaulting rule: any
// non-positive Workers or FramesPerRound selects the documented default
// (NumCPU / 1) instead of failing construction.
func TestEngineOptionDefaulting(t *testing.T) {
	for _, v := range []int{0, -1, -1000} {
		e, err := NewEngine(EngineOptions{Workers: v, FramesPerRound: v})
		if err != nil {
			t.Fatalf("Workers=FramesPerRound=%d rejected: %v", v, err)
		}
		if got, want := e.Workers(), runtime.NumCPU(); got != want {
			t.Errorf("Workers=%d defaulted to %d, want NumCPU (%d)", v, got, want)
		}
		if got := e.opts.FramesPerRound; got != 1 {
			t.Errorf("FramesPerRound=%d defaulted to %d, want 1", v, got)
		}
		e.Close()
	}
	// Explicit positive values are taken as-is.
	e, err := NewEngine(EngineOptions{Workers: 3, FramesPerRound: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Workers() != 3 || e.opts.FramesPerRound != 7 {
		t.Errorf("explicit options overridden: Workers=%d FramesPerRound=%d", e.Workers(), e.opts.FramesPerRound)
	}
}
