package exsample

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// liveSegment synthesizes one busy camera segment (dense motion, ~40 cars).
func liveSegment(t *testing.T, framesEach int64, seed uint64) *Dataset {
	t.Helper()
	return elasticShard(t, framesEach, seed)
}

// deadSegment synthesizes a segment with almost nothing in it: one object
// visible for about one frame, so the motion gate's strided probe pass sees
// (nearly) only sensor flicker and the segment's energy sits far below any
// sane threshold.
func deadSegment(t *testing.T, framesEach int64, seed uint64) *Dataset {
	t.Helper()
	ds, err := Synthesize(SynthSpec{
		NumFrames:    framesEach,
		NumInstances: 1,
		Class:        "car",
		MeanDuration: 1,
		SkewFraction: 1.0 / 8,
		ChunkFrames:  framesEach / 8,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// waitParked polls until the standing query parks (or the deadline fires) —
// the deterministic synchronization point of the ingest tests: a parked
// query has consumed every active frame it can reach.
func waitParked(t *testing.T, h *QueryHandle, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !h.Parked() {
		if time.Now().After(deadline) {
			t.Fatalf("standing query never parked (%s)", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// drainEvents reads the handle's (closed or closing) event channel dry.
func drainEvents(h *QueryHandle) []QueryEvent {
	var out []QueryEvent
	for ev := range h.Events() {
		out = append(out, ev)
	}
	return out
}

const gateThreshold = 0.12

func TestStreamMotionGateFencesDeadSegments(t *testing.T) {
	// The motion-gate acceptance bar: a dead segment is attached already
	// fenced, so over the whole query its DetectCalls stay exactly zero —
	// the only charge the stream ever takes for it is the strided gate
	// probe pass.
	const framesEach = 2000
	s, err := NewStreamSource(StreamConfig{MotionThreshold: gateThreshold},
		liveSegment(t, framesEach, 801))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(deadSegment(t, framesEach, 802)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(liveSegment(t, framesEach, 803)); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if segs[0].Gated || !segs[1].Gated || segs[2].Gated {
		t.Fatalf("gate verdicts = %v/%v/%v (energies %v/%v/%v), want live/dead/live",
			segs[0].Gated, segs[1].Gated, segs[2].Gated,
			segs[0].Energy, segs[1].Energy, segs[2].Energy)
	}
	if segs[0].Energy < 0.2 || segs[2].Energy < 0.2 {
		t.Fatalf("live segments probed suspiciously quiet: %v / %v", segs[0].Energy, segs[2].Energy)
	}
	st := s.StreamStats()
	if st.Gated != 1 || st.Live != 3 || st.GateSeconds <= 0 {
		t.Fatalf("stream stats = %+v, want 1 gated of 3 live with a positive gate charge", st)
	}
	if s.NumActiveShards() != 2 {
		t.Fatalf("NumActiveShards = %d, want 2 (gated segment fenced)", s.NumActiveShards())
	}

	rep, err := s.Search(Query{Class: "car", Limit: 1 << 30}, Options{Seed: 5, MaxFrames: 800})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesProcessed != 800 {
		t.Fatalf("processed %d frames, want 800", rep.FramesProcessed)
	}
	for _, sh := range s.ShardStats() {
		switch sh.Shard {
		case 1:
			if sh.DetectCalls != 0 {
				t.Fatalf("gated segment took %d detector calls, want 0", sh.DetectCalls)
			}
			if sh.Status != "gated" {
				t.Fatalf("gated segment status = %q", sh.Status)
			}
		default:
			if sh.DetectCalls == 0 {
				t.Fatalf("live segment %d never reached the detector", sh.Shard)
			}
		}
	}
}

func TestStreamStandingMatchesOfflineSearch(t *testing.T) {
	// The determinism regression bar: a standing engine query over the ring
	// must report byte-identically to an offline Search over a ShardedSource
	// composed of the same segment history with the same slots drained —
	// same seed, same budget. Streaming changes when frames become
	// sampleable, never what the sampler does with them.
	const framesEach = 2000
	const budget = 500
	q := Query{Class: "car", Limit: 1 << 30}
	opts := Options{Seed: 67, MaxFrames: budget}
	seeds := []uint64{901, 902, 903, 904, 905, 906}

	s, err := NewStreamSource(StreamConfig{Retention: 4}, liveSegment(t, framesEach, seeds[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds[1:] {
		if _, err := s.Append(liveSegment(t, framesEach, seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Retention 4 over 6 appends: slots 0 and 1 evicted.
	if st := s.StreamStats(); st.Evicted != 2 || st.Live != 4 {
		t.Fatalf("ring state = %+v, want 2 evicted / 4 live", st)
	}
	e := newTestEngine(t, EngineOptions{Workers: 4, FramesPerRound: 1, EventBuffer: 1 << 10})
	h, err := e.SubmitStanding(context.Background(), s, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for range h.Events() {
	}
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}

	offline := make([]*Dataset, len(seeds))
	for i, seed := range seeds {
		offline[i] = liveSegment(t, framesEach, seed)
	}
	ss, err := NewShardedSource("stream", offline...)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		if err := ss.DrainShard(slot); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ss.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("standing stream query diverged from offline search:\noffline: frames=%d results=%d seconds=%v\nstream:  frames=%d results=%d seconds=%v",
			want.FramesProcessed, len(want.Results), want.TotalSeconds(),
			got.FramesProcessed, len(got.Results), got.TotalSeconds())
	}
	if got.FramesProcessed != budget {
		t.Fatalf("budget not spent: %d frames", got.FramesProcessed)
	}
}

func TestStreamStandingParksAndWakesOnAppend(t *testing.T) {
	// The tentpole lifecycle: a standing query drains the ring, parks
	// (leaves the scheduler entirely — no terminal Reason), wakes when a
	// segment is appended, emits the new segment's alerts incrementally,
	// and parks again. Frames are applied exactly once across the whole
	// life of the query.
	const framesEach = 1000
	s, err := NewStreamSource(StreamConfig{}, liveSegment(t, framesEach, 811))
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 8, EventBuffer: 1 << 15})
	// No Limit and no RecallTarget: an open-ended alert query, legal only
	// for SubmitStanding.
	h, err := e.SubmitStanding(context.Background(), s, Query{Class: "car"}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Standing() {
		t.Fatal("handle does not identify as standing")
	}
	waitParked(t, h, "after consuming the initial segment")
	if _, err := s.Append(liveSegment(t, framesEach, 812)); err != nil {
		t.Fatal(err)
	}
	waitParked(t, h, "after consuming the appended segment")
	if parks, wakes := e.Stats().Parks, e.Stats().Wakes; parks < 2 || wakes < 1 {
		t.Fatalf("park/wake counters = %d/%d, want at least 2/1", parks, wakes)
	}

	h.Cancel()
	rep, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled standing query returned %v, want context.Canceled", err)
	}
	if rep.FramesProcessed != 2*framesEach {
		t.Fatalf("processed %d frames, want %d (both segments, every frame exactly once)",
			rep.FramesProcessed, 2*framesEach)
	}
	seen := make(map[int64]bool)
	for _, ev := range drainEvents(h) {
		if seen[ev.Frame] {
			t.Fatalf("frame %d emitted twice", ev.Frame)
		}
		seen[ev.Frame] = true
	}
	if len(seen) != 2*framesEach || h.Dropped() != 0 {
		t.Fatalf("%d distinct events, %d dropped, want %d/0", len(seen), h.Dropped(), 2*framesEach)
	}
}

func TestStreamStandingParksOnEmptyRingAndTypedSentinel(t *testing.T) {
	// Satellite: when retention + the gate leave zero active shards,
	// bounded entry points fail with the typed ErrNoActiveShards sentinel,
	// while a standing query parks and catches the next live append.
	const framesEach = 1000
	s, err := NewStreamSource(StreamConfig{Retention: 1, MotionThreshold: gateThreshold},
		liveSegment(t, framesEach, 821))
	if err != nil {
		t.Fatal(err)
	}
	// Appending a dead segment evicts the only live one: the ring now
	// retains a single gated segment and nothing is samplable.
	if _, err := s.Append(deadSegment(t, framesEach, 822)); err != nil {
		t.Fatal(err)
	}
	if s.NumActiveShards() != 0 {
		t.Fatalf("NumActiveShards = %d, want 0", s.NumActiveShards())
	}
	q := Query{Class: "car", Limit: 1}
	if _, err := s.Search(q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Fatalf("Search error = %v, want ErrNoActiveShards", err)
	}
	if _, err := s.NewSession(q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Fatalf("NewSession error = %v, want ErrNoActiveShards", err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, FramesPerRound: 4, EventBuffer: 1 << 15})
	if _, err := e.Submit(context.Background(), s, q, Options{Seed: 1}); !errors.Is(err, ErrNoActiveShards) {
		t.Fatalf("Engine.Submit error = %v, want ErrNoActiveShards", err)
	}

	h, err := e.SubmitStanding(context.Background(), s, Query{Class: "car"}, Options{Seed: 2})
	if err != nil {
		t.Fatalf("standing query rejected on an all-fenced ring: %v", err)
	}
	waitParked(t, h, "on the empty ring")
	if _, err := s.Append(liveSegment(t, framesEach, 823)); err != nil {
		t.Fatal(err)
	}
	waitParked(t, h, "after the ring came back to life")
	h.Cancel()
	rep, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if rep.FramesProcessed != framesEach {
		t.Fatalf("processed %d frames, want %d (exactly the live segment)", rep.FramesProcessed, framesEach)
	}
	for _, ev := range drainEvents(h) {
		if slot := int(ev.Frame / framesEach); slot != 2 {
			t.Fatalf("frame %d belongs to slot %d, want only the live slot 2", ev.Frame, slot)
		}
	}
}

func TestStreamReplayDeterminism(t *testing.T) {
	// Replaying an identical ingest schedule — appends issued only at park
	// boundaries, so arrival order relative to the sampler is pinned — must
	// reproduce the identical alert log and final report. This is what
	// makes a live incident replayable offline.
	const framesEach = 1000
	type step struct {
		seed uint64
		dead bool
	}
	schedule := []step{{831, false}, {832, true}, {833, false}, {834, true}, {835, false}}

	run := func() ([]QueryEvent, *Report) {
		t.Helper()
		s, err := NewStreamSource(StreamConfig{Retention: 4, MotionThreshold: gateThreshold},
			liveSegment(t, framesEach, 830))
		if err != nil {
			t.Fatal(err)
		}
		e := newTestEngine(t, EngineOptions{Workers: 3, FramesPerRound: 3, EventBuffer: 1 << 15})
		h, err := e.SubmitStanding(context.Background(), s, Query{Class: "car"}, Options{Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range schedule {
			waitParked(t, h, "between schedule steps")
			seg := liveSegment(t, framesEach, st.seed)
			if st.dead {
				seg = deadSegment(t, framesEach, st.seed)
			}
			info, err := s.Append(seg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Gated != st.dead {
				t.Fatalf("segment seed %d gated=%v, want %v", st.seed, info.Gated, st.dead)
			}
		}
		waitParked(t, h, "after the full schedule")
		h.Cancel()
		rep, err := h.Wait()
		if !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		return drainEvents(h), rep
	}

	events1, rep1 := run()
	events2, rep2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("replayed ingest diverged: frames %d vs %d, results %d vs %d, seconds %v vs %v",
			rep1.FramesProcessed, rep2.FramesProcessed, len(rep1.Results), len(rep2.Results),
			rep1.TotalSeconds(), rep2.TotalSeconds())
	}
	if !reflect.DeepEqual(events1, events2) {
		t.Fatalf("replayed alert logs diverged: %d vs %d events", len(events1), len(events2))
	}
	// 1 initial + 3 live appends, dead segments fenced at birth.
	if want := int64(4 * framesEach); rep1.FramesProcessed != want {
		t.Fatalf("processed %d frames, want %d (live segments only)", rep1.FramesProcessed, want)
	}
}

func TestStreamRetentionEvictsMidQuery(t *testing.T) {
	// Eviction fencing under a live query, deterministically: a Session
	// (caller-driven, single-threaded) is mid-segment when retention drains
	// the ring's tail; no frame of the evicted slot may be sampled after
	// the append that evicted it returns.
	const framesEach = 3000
	s, err := NewStreamSource(StreamConfig{Retention: 2}, liveSegment(t, framesEach, 841))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.NewSession(Query{Class: "car", Limit: 1 << 30}, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	var sawSlot0, evicted bool
	for sess.Frames() < 900 {
		info, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		slot := int(info.Frame / framesEach)
		if !evicted && slot == 0 {
			sawSlot0 = true
		}
		if evicted && slot == 0 {
			t.Fatalf("frame %d (evicted slot 0) sampled after the eviction", info.Frame)
		}
		if !evicted && sess.Frames() == 150 {
			if _, err := s.Append(liveSegment(t, framesEach, 842)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Append(liveSegment(t, framesEach, 843)); err != nil {
				t.Fatal(err)
			}
			evicted = true
			if segs := s.Segments(); !segs[0].Evicted || segs[1].Evicted {
				t.Fatalf("ring after appends = %+v, want exactly slot 0 evicted", segs)
			}
		}
	}
	if !sawSlot0 {
		t.Fatal("slot 0 never sampled before its eviction — fencing untested")
	}
	if got := sess.Frames(); got != 900 {
		t.Fatalf("query processed %d frames, want 900 (two live segments remain)", got)
	}
	if st := s.StreamStats(); st.Live != 2 || st.Evicted != 1 {
		t.Fatalf("stream stats = %+v, want 2 live / 1 evicted", st)
	}
}

func TestStreamChurnSoak(t *testing.T) {
	// The race/churn soak: eight concurrent queries — half standing, half
	// bounded — over a ring whose writer keeps appending (live and dead)
	// and whose retention keeps evicting, all under the race detector. No
	// query loses or double-applies a frame, nothing samples a gated
	// segment, and the standing queries survive the full churn.
	runStreamChurnSoak(t, EngineOptions{Workers: 4, FramesPerRound: 4, EventBuffer: 1 << 16})
}

func TestStreamChurnSoakGlobalBudget(t *testing.T) {
	// The same churn soak with the global marginal-value budget driving the
	// rounds: values are polled while standing queries park, wake and see
	// their arm set grow, and the budget (16 frames over 8 queries, floor 1)
	// keeps every query — including the near-zero-value ones late in the
	// run — progressing without loss, duplication or gated-segment samples.
	runStreamChurnSoak(t, EngineOptions{Workers: 4, FramesPerRound: 4,
		EventBuffer: 1 << 16, GlobalBudget: 16, FloorQuota: 1})
}

func runStreamChurnSoak(t *testing.T, engOpts EngineOptions) {
	const framesEach = 1000
	const appends = 11
	dead := func(slot int) bool { return slot%3 == 2 }

	s, err := NewStreamSource(StreamConfig{Retention: 5, MotionThreshold: gateThreshold},
		liveSegment(t, framesEach, 860))
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, engOpts)

	var standing, bounded []*QueryHandle
	for i := 0; i < 4; i++ {
		h, err := e.SubmitStanding(context.Background(), s, Query{Class: "car"},
			Options{Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		standing = append(standing, h)
	}
	for i := 0; i < 4; i++ {
		h, err := e.Submit(context.Background(), s, Query{Class: "car", Limit: 1 << 30},
			Options{Seed: uint64(200 + i), MaxFrames: 600})
		if err != nil {
			t.Fatal(err)
		}
		bounded = append(bounded, h)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for slot := 1; slot <= appends; slot++ {
			seg := liveSegment(t, framesEach, uint64(860+slot))
			if dead(slot) {
				seg = deadSegment(t, framesEach, uint64(860+slot))
			}
			info, err := s.Append(seg)
			if err != nil {
				t.Errorf("append %d: %v", slot, err)
				return
			}
			if info.Gated != dead(slot) {
				t.Errorf("segment %d gated=%v, want %v", slot, info.Gated, dead(slot))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()

	check := func(h *QueryHandle, rep *Report, label string) {
		t.Helper()
		seen := make(map[int64]bool)
		for _, ev := range drainEvents(h) {
			if seen[ev.Frame] {
				t.Fatalf("%s: frame %d applied twice", label, ev.Frame)
			}
			seen[ev.Frame] = true
			slot := int(ev.Frame / framesEach)
			if slot < 0 || slot > appends {
				t.Fatalf("%s: frame %d outside any appended segment", label, ev.Frame)
			}
			if slot > 0 && dead(slot) {
				t.Fatalf("%s: frame %d sampled from gated slot %d", label, ev.Frame, slot)
			}
		}
		if int64(len(seen)) != rep.FramesProcessed || h.Dropped() != 0 {
			t.Fatalf("%s: %d distinct frames, %d dropped, report says %d — lost or double work",
				label, len(seen), h.Dropped(), rep.FramesProcessed)
		}
	}

	for i, h := range bounded {
		rep, err := h.Wait()
		if err != nil {
			t.Fatalf("bounded query %d: %v", i, err)
		}
		if rep.FramesProcessed == 0 {
			t.Fatalf("bounded query %d made no progress", i)
		}
		check(h, rep, "bounded")
	}
	for i, h := range standing {
		waitParked(t, h, "soak wind-down")
		h.Cancel()
		rep, err := h.Wait()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("standing query %d: %v", i, err)
		}
		check(h, rep, "standing")
		if rep.FramesProcessed == 0 {
			t.Fatalf("standing query %d made no progress", i)
		}
	}
	// Gated slots never cost a detector call, churn or no churn.
	for _, sh := range s.ShardStats() {
		if sh.Shard > 0 && dead(sh.Shard) && sh.DetectCalls != 0 {
			t.Fatalf("gated slot %d took %d detector calls", sh.Shard, sh.DetectCalls)
		}
	}
	if p, w := e.Stats().Parks, e.Stats().Wakes; p == 0 || w == 0 {
		t.Fatalf("soak never exercised park/wake (parks=%d wakes=%d)", p, w)
	}
}

func TestStreamConstructionAndValidation(t *testing.T) {
	const framesEach = 1000
	if _, err := NewStreamSource(StreamConfig{Retention: -1}, liveSegment(t, framesEach, 871)); err == nil {
		t.Error("negative retention accepted")
	}
	if _, err := NewStreamSource(StreamConfig{MotionThreshold: -0.1}, liveSegment(t, framesEach, 871)); err == nil {
		t.Error("negative motion threshold accepted")
	}
	if _, err := NewStreamSource(StreamConfig{}); err == nil {
		t.Error("stream with no initial segment accepted")
	}
	if _, err := NewStreamSource(StreamConfig{}, nil); err == nil {
		t.Error("nil initial segment accepted")
	}
	failing, err := Synthesize(shardSpec(framesEach, 872), WithDetectorFailureAfter(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamSource(StreamConfig{}, failing); err == nil {
		t.Error("failure-injected segment accepted into a stream")
	}
	s, err := NewStreamSource(StreamConfig{}, liveSegment(t, framesEach, 873))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil); err == nil {
		t.Error("nil append accepted")
	}

	e := newTestEngine(t, EngineOptions{Workers: 1})
	ctx := context.Background()
	bad := []struct {
		q    Query
		opts Options
	}{
		{Query{}, Options{}},
		{Query{Class: "car", Limit: -1}, Options{}},
		{Query{Class: "car", RecallTarget: 1.5}, Options{}},
		{Query{Class: "car"}, Options{BatchSize: 4}},
		{Query{Class: "car"}, Options{Parallelism: 2}},
		{Query{Class: "car"}, Options{NumChunks: 8}},
		{Query{Class: "car"}, Options{AutoChunk: true}},
		{Query{Class: "car"}, Options{ProxyTrainPositives: 5}},
	}
	for i, c := range bad {
		if _, err := e.SubmitStanding(ctx, s, c.q, c.opts); err == nil {
			t.Errorf("bad standing submission %d accepted: %+v %+v", i, c.q, c.opts)
		}
	}
	// A standing query against a fixed local Dataset is rejected: there is
	// no live topology to follow, so "standing" would just be a bounded
	// query that can never wake.
	if _, err := e.SubmitStanding(ctx, smallDataset(t), Query{Class: "car"}, Options{}); err == nil {
		t.Error("standing query against a non-elastic source accepted")
	}
}
