package exsample

import "testing"

func TestSessionBasicLoop(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	sess, err := ds.NewSession(Query{Class: "car", Limit: 15}, Options{Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !sess.Done() {
		info, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
		if info.Chunk < 0 {
			t.Fatal("exsample session did not report a chunk")
		}
		if steps > 100000 {
			t.Fatal("session never finished")
		}
	}
	if len(sess.Results()) < 15 {
		t.Fatalf("session found %d results", len(sess.Results()))
	}
	if sess.Frames() != int64(steps) {
		t.Fatalf("Frames() = %d, steps = %d", sess.Frames(), steps)
	}
	if sess.Seconds() <= 0 {
		t.Fatal("no time charged")
	}
	if sess.Recall() <= 0 {
		t.Fatal("zero recall")
	}
}

func TestSessionMatchesSearch(t *testing.T) {
	// Driving a session to the same stopping condition must reproduce
	// Search exactly (same seed, same strategy).
	ds := smallDataset(t, WithPerfectDetector())
	q := Query{Class: "car", Limit: 20}
	opts := Options{Seed: 93}
	rep, err := ds.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.NewSession(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, ok, err := sess.Step(); err != nil || !ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if sess.Frames() != rep.FramesProcessed {
		t.Fatalf("session frames %d != search %d", sess.Frames(), rep.FramesProcessed)
	}
	if len(sess.Results()) != len(rep.Results) {
		t.Fatalf("session results %d != search %d", len(sess.Results()), len(rep.Results))
	}
	for i := range rep.Results {
		if sess.Results()[i] != rep.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestSessionAllStrategies(t *testing.T) {
	ds := smallDataset(t)
	for _, strat := range []Strategy{StrategyExSample, StrategyRandom, StrategyRandomPlus, StrategySequential, StrategyProxy} {
		sess, err := ds.NewSession(Query{Class: "car", Limit: 5}, Options{Strategy: strat, Seed: 95})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := 0; i < 100000 && !sess.Done(); i++ {
			if _, ok, err := sess.Step(); err != nil || !ok {
				if err != nil {
					t.Fatalf("%v: %v", strat, err)
				}
				break
			}
		}
		if len(sess.Results()) < 5 {
			t.Errorf("%v: session found %d results", strat, len(sess.Results()))
		}
		if strat == StrategyProxy && sess.Seconds() < ds.ScanSeconds() {
			t.Errorf("proxy session did not charge the scan")
		}
	}
}

func TestSessionExhaustion(t *testing.T) {
	ds, err := Synthesize(SynthSpec{
		NumFrames:    2000,
		NumInstances: 3,
		Class:        "car",
		MeanDuration: 10,
		ChunkFrames:  500,
		Seed:         97,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.NewSession(Query{Class: "car", Limit: 1000}, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		_, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	if steps != 2000 {
		t.Fatalf("session processed %d frames before exhaustion, want 2000", steps)
	}
	// Further steps keep returning not-ok without error.
	if _, ok, err := sess.Step(); ok || err != nil {
		t.Fatalf("post-exhaustion Step = %v, %v", ok, err)
	}
}

func TestSessionChunkStats(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	sess, err := ds.NewSession(Query{Class: "car", Limit: 30}, Options{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, ok, _ := sess.Step(); !ok {
			break
		}
	}
	stats := sess.ChunkStats()
	if len(stats) != ds.NumChunks() {
		t.Fatalf("%d chunk stats for %d chunks", len(stats), ds.NumChunks())
	}
	var totalN int64
	for _, cs := range stats {
		if cs.End <= cs.Start {
			t.Fatalf("bad chunk bounds %+v", cs)
		}
		if cs.Estimate <= 0 {
			t.Fatalf("non-positive estimate %+v", cs)
		}
		totalN += cs.N
	}
	if totalN != sess.Frames() {
		t.Fatalf("chunk n sum %d != frames %d", totalN, sess.Frames())
	}
	// Non-chunked sessions return nil.
	rsess, err := ds.NewSession(Query{Class: "car", Limit: 1}, Options{Strategy: StrategyRandom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rsess.ChunkStats() != nil {
		t.Fatal("random session returned chunk stats")
	}
}

func TestSessionValidation(t *testing.T) {
	ds := smallDataset(t)
	if _, err := ds.NewSession(Query{}, Options{}); err == nil {
		t.Error("empty class accepted")
	}
	if _, err := ds.NewSession(Query{Class: "dragon", Limit: 1}, Options{}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := ds.NewSession(Query{Class: "car", Limit: 1}, Options{BatchSize: 8}); err == nil {
		t.Error("batched session accepted")
	}
	if _, err := ds.NewSession(Query{Class: "car", Limit: 1}, Options{BatchSize: 8, Parallelism: 2}); err == nil {
		t.Error("parallel session accepted")
	}
}

func TestSessionHomeChunkAccounting(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	sess, err := ds.NewSession(Query{Class: "car", Limit: 20},
		Options{HomeChunkAccounting: true, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, ok, err := sess.Step(); err != nil || !ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if len(sess.Results()) < 20 {
		t.Fatalf("found %d", len(sess.Results()))
	}
}

func TestSessionFusion(t *testing.T) {
	ds := smallDataset(t, WithPerfectDetector())
	sess, err := ds.NewSession(Query{Class: "car", Limit: 10},
		Options{FuseProxyWithinChunk: true, Seed: 105})
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, ok, err := sess.Step(); err != nil || !ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if sess.Seconds() <= 0 || len(sess.Results()) < 10 {
		t.Fatalf("fusion session: %d results, %vs", len(sess.Results()), sess.Seconds())
	}
}
